// Package fed implements the federated-learning simulation runtime: the
// synchronous FedAvg server of paper §3, concurrent local training of the M
// parties (each client trains in its own goroutine within a round), the
// 2-round mean/moment exchange of Algorithm 1, optional auxiliary-state
// aggregation (SCAFFOLD control variates), byte-level communication
// accounting, early stopping with patience, and fault tolerance (failure
// policies, per-call timeouts, quorum guards — see failure.go — and server
// checkpoint/resume, see checkpoint.go).
package fed

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"time"

	"fedomd/internal/codec"
	"fedomd/internal/mat"
	"fedomd/internal/moments"
	"fedomd/internal/nn"
	"fedomd/internal/obs"
	"fedomd/internal/telemetry"
)

// Client is one federated participant. Implementations own their local graph
// data and model and must be safe to drive from a single goroutine at a time
// (the server never calls a client concurrently with itself).
type Client interface {
	// Name identifies the client in logs and errors.
	Name() string
	// NumSamples is the FedAvg aggregation weight (local training-node count).
	NumSamples() int
	// Params exposes the live local parameter set; the server reads it after
	// local training to aggregate.
	Params() *nn.Params
	// SetParams overwrites the local model with the global weights. The
	// argument must not be retained past the call: the runtime may recycle
	// its backing buffers (all in-tree clients copy via Params.CopyFrom).
	SetParams(global *nn.Params) error
	// TrainLocal runs the negotiated local epochs for one round and returns
	// the final local training loss.
	TrainLocal(round int) (float64, error)
	// EvalVal and EvalTest return (correct, total) on the local masks.
	EvalVal() (int, int)
	EvalTest() (int, int)
}

// MomentClient is implemented by clients that participate in FedOMD's
// 2-round statistics exchange (Algorithm 1 lines 3-18). Layer indices run
// over the hidden representations Z^1..Z^{L-1}.
type MomentClient interface {
	Client
	// LocalMeans returns the per-layer hidden-feature means and the local
	// sample count (Algorithm 1 lines 3-8).
	LocalMeans() (means []*mat.Dense, n int, err error)
	// CentralAroundGlobal returns, per layer, the central moments of orders
	// 2..K computed around the received global means (lines 12-15).
	CentralAroundGlobal(globalMeans []*mat.Dense) (moms [][]*mat.Dense, n int, err error)
	// SetGlobalStats delivers the aggregated global statistics the client
	// uses in its CMD loss during TrainLocal (lines 16-18).
	SetGlobalStats(means []*mat.Dense, central [][]*mat.Dense)
}

// AuxClient is implemented by clients exchanging auxiliary state beyond model
// weights; the server aggregates uploads by simple averaging and broadcasts
// the aggregate (SCAFFOLD's control variates use this).
type AuxClient interface {
	Client
	UploadAux() *nn.Params
	DownloadAux(global *nn.Params) error
}

// Config controls a federated run.
type Config struct {
	// Rounds is the maximum number of communication rounds (the paper's
	// "epoch" with communication interval 1).
	Rounds int
	// Patience stops training after this many rounds without a validation
	// improvement; 0 disables early stopping.
	Patience int
	// Sequential disables concurrent client training (ablation knob).
	Sequential bool
	// EvalEvery controls how often validation/test accuracy is measured;
	// 1 (default when 0) evaluates every round.
	EvalEvery int
	// ClientFraction selects ⌈fraction·M⌉ clients uniformly at random each
	// round to train and aggregate (standard FL partial participation).
	// 0 explicitly means full participation (every client trains every
	// round); otherwise the fraction must lie in (0, 1].
	ClientFraction float64
	// SampleSeed makes the per-round client sampling deterministic.
	SampleSeed int64
	// Recorder receives the run's telemetry: per-round per-phase spans
	// (broadcast, eval, moments, train, aux, aggregate), per-client
	// train-duration histograms, and communication counters. Nil disables
	// telemetry at zero cost.
	Recorder telemetry.Recorder
	// Codec selects the wire codec applied to parameter payloads (see
	// internal/codec): uploads travel encoded against the last broadcast
	// global and are decoded before aggregation, so lossy tiers affect the
	// aggregate exactly as a wire deployment would, and BytesUp/BytesDown
	// report encoded sizes. The zero value keeps the historical raw-float64
	// accounting. Statistics payloads (moments, aux) are not encoded.
	Codec codec.Options

	// Policy selects the failure-handling mode. The zero value, FailFast,
	// aborts the run on the first client error — the historical behavior.
	Policy FailurePolicy
	// ClientTimeout bounds every individual client call (broadcast, eval,
	// statistics, training, upload). An expired call counts as a failure
	// under the active Policy. 0 disables the bound: a hung party then
	// stalls the synchronous round forever.
	ClientTimeout time.Duration
	// MinClients is the quorum: the minimum number of parties that must
	// survive a round for its aggregation to happen. Values below 1 mean 1.
	MinClients int
	// QuorumPolicy selects between aborting the run (default) and skipping
	// the round's aggregation when quorum is lost.
	QuorumPolicy QuorumPolicy
	// MaxStrikes is the number of consecutive failed rounds after which
	// Quarantine benches a party (default 3 when unset).
	MaxStrikes int
	// CooldownRounds is the base bench duration under Quarantine (default
	// 1); it doubles on each re-bench of the same party.
	CooldownRounds int

	// RunID names the run in the Result and in distributed traces; empty
	// generates a fresh random ID so every run is correlatable offline.
	RunID string
	// Tracer emits distributed spans for the run: a root "fed/run" span,
	// per-round "fed/round" spans (published as the tracer's active context
	// so transport and codec spans parent under them), and per-party
	// train/upload spans. Nil disables tracing at zero cost.
	Tracer *obs.Tracer
	// Observer receives one obs.RoundObservation per finished round — the
	// feed for health monitors and the live dashboard. Nil disables it.
	Observer obs.RoundObserver

	// CheckpointEvery snapshots the server state every N completed rounds
	// through CheckpointWriter; 0 disables checkpointing.
	CheckpointEvery int
	// CheckpointWriter persists a snapshot (see FileCheckpointer for the
	// on-disk writer). A writer error aborts the run.
	CheckpointWriter func(*Checkpoint) error
	// Resume restarts a run from a snapshot taken by an identically
	// configured run over the same client fleet (see LoadCheckpointFile).
	Resume *Checkpoint
	// Spec describes the model architecture being trained so checkpoints
	// can be reconstructed standalone (see Checkpoint.Spec). Nil writes
	// header-less snapshots, matching the pre-spec format.
	Spec *ModelSpec

	// Aggregation selects the round topology. The zero value, AggSync, is
	// the barriered loop above — bit-identical to the historical behavior.
	// AggAsync is the buffered no-barrier mode of async.go: stragglers slow
	// only themselves, and their late updates fold into later rounds with a
	// staleness-discounted weight.
	Aggregation AggregationMode
	// BufferK is the number of arrivals folded per logical round in async
	// mode; 0 defaults to ⌈M/2⌉ over the fleet size M.
	BufferK int
	// MaxStaleness bounds, in logical rounds, how old a buffered update may
	// be at fold time before it is evicted; 0 defaults to 8. Negative
	// values are rejected.
	MaxStaleness int
	// StalenessAlpha is the exponent α of the staleness discount
	// w_i/(1+s)^α applied to every folded quantity; 0 defaults to 1.
	StalenessAlpha float64
	// BufferTimeout bounds how long an async logical round waits for its
	// buffer to reach BufferK before folding whatever arrived (the round is
	// then marked stalled for the health plane). 0 waits until the buffer
	// fills or no dispatched update can arrive anymore.
	BufferTimeout time.Duration
}

// Telemetry metric names emitted by Run. Phase spans are histograms of
// per-round durations in seconds; bytes are monotonic counters.
const (
	MetricRoundSeconds     = "fed/round_seconds"
	MetricBroadcastSeconds = "fed/phase/broadcast_seconds"
	MetricEvalSeconds      = "fed/phase/eval_seconds"
	MetricMomentsSeconds   = "fed/phase/moments_seconds"
	MetricTrainSeconds     = "fed/phase/train_seconds"
	MetricAuxSeconds       = "fed/phase/aux_seconds"
	MetricAggregateSeconds = "fed/phase/aggregate_seconds"
	MetricFinalEvalSeconds = "fed/phase/final_eval_seconds"
	MetricClientTrainSecs  = "fed/client/train_seconds"
	MetricBytesUp          = "fed/bytes_up"
	MetricBytesDown        = "fed/bytes_down"
	MetricRounds           = "fed/rounds"
	MetricActiveClients    = "fed/active_clients"
	MetricValAcc           = "fed/val_acc"
	MetricTestAcc          = "fed/test_acc"
	// Fault-tolerance counters (see failure.go).
	MetricClientDropped     = "fed/client_dropped"
	MetricClientQuarantined = "fed/client_quarantined"
	MetricRoundDegraded     = "fed/round_degraded"
	// MetricNonFiniteScreened counts uploads rejected by the non-finite
	// screen (the health monitor's non_finite rule watches the same events).
	MetricNonFiniteScreened = "fed/non_finite_screened"
	// Async buffered-aggregation telemetry (async.go). Dispatched counts
	// jobs handed to workers; folded/carried/evicted/rejected partition the
	// fates of buffered updates; staleness is a histogram of the applied
	// staleness of folded updates; buffer-wait is the per-round collect
	// latency; stalls counts rounds whose buffer missed K at the deadline.
	MetricAsyncDispatched = "fed/async_dispatched"
	MetricAsyncFolded     = "fed/async_folded"
	MetricAsyncCarried    = "fed/async_carried"
	MetricAsyncEvicted    = "fed/async_evicted"
	MetricAsyncRejected   = "fed/async_rejected"
	MetricAsyncStaleness  = "fed/async_staleness"
	MetricAsyncBufferWait = "fed/async_buffer_wait_seconds"
	MetricAsyncStalls     = "fed/async_stalls"
)

// RoundStats is one row of the training history (Figure 5 data).
type RoundStats struct {
	Round     int
	TrainLoss float64
	ValAcc    float64
	TestAcc   float64
	BytesUp   int64
	BytesDown int64
	// Start and End are the round's wall-clock bounds, for correlating
	// history rows with trace spans from other processes.
	Start, End time.Time
	// Dropped counts parties excluded from this round by the failure
	// policy; Quarantined counts parties benched at its end.
	Dropped     int
	Quarantined int
	// Degraded marks a round that lost at least one party or skipped its
	// aggregation on lost quorum.
	Degraded bool
}

// Result summarises a run.
type Result struct {
	// RunID is the (possibly generated) run identifier; it matches the
	// JSONL trace header so results and traces correlate offline.
	RunID string
	// Start and End are the run's wall-clock bounds.
	Start, End time.Time

	History []RoundStats
	// BestValAcc is the best validation accuracy seen and TestAtBestVal the
	// test accuracy at that round — the reported metric. The final
	// aggregate is scored too: BestRound equals the round count when the
	// final model wins.
	BestValAcc    float64
	TestAtBestVal float64
	BestRound     int
	// FinalValAcc and FinalTestAcc score the last aggregated global model
	// (the one in FinalParams), measured after the round loop.
	FinalValAcc  float64
	FinalTestAcc float64
	// FinalParams is the last aggregated global model.
	FinalParams                  *nn.Params
	TotalBytesUp, TotalBytesDown int64
	// ClientFailures tallies failures per client name over the whole run
	// (nil when no failures were tolerated).
	ClientFailures map[string]int
}

// Run executes synchronous federated training over the clients. All clients
// must be non-nil; if every client implements MomentClient the FedOMD
// statistics exchange runs each round before local training.
func Run(cfg Config, clients []Client) (*Result, error) {
	if len(clients) == 0 {
		return nil, errors.New("fed: no clients")
	}
	if cfg.Rounds <= 0 {
		return nil, fmt.Errorf("fed: Rounds must be positive, got %d", cfg.Rounds)
	}
	evalEvery := cfg.EvalEvery
	if evalEvery <= 0 {
		evalEvery = 1
	}
	if cfg.ClientFraction < 0 || cfg.ClientFraction > 1 {
		return nil, fmt.Errorf("fed: ClientFraction must be 0 (full participation) or in (0, 1], got %v", cfg.ClientFraction)
	}
	if cfg.Policy < FailFast || cfg.Policy > Quarantine {
		return nil, fmt.Errorf("fed: unknown failure policy %d", int(cfg.Policy))
	}
	if err := cfg.Codec.Validate(); err != nil {
		return nil, fmt.Errorf("fed: %w", err)
	}
	if cfg.Aggregation < AggSync || cfg.Aggregation > AggAsync {
		return nil, fmt.Errorf("fed: unknown aggregation mode %d", int(cfg.Aggregation))
	}
	if cfg.BufferK < 0 || cfg.BufferK > len(clients) {
		return nil, fmt.Errorf("fed: BufferK must lie in [0, %d clients], got %d", len(clients), cfg.BufferK)
	}
	if cfg.MaxStaleness < 0 {
		return nil, fmt.Errorf("fed: MaxStaleness must be non-negative, got %d", cfg.MaxStaleness)
	}
	if cfg.StalenessAlpha < 0 {
		return nil, fmt.Errorf("fed: StalenessAlpha must be non-negative, got %v", cfg.StalenessAlpha)
	}
	rec := telemetry.Or(cfg.Recorder)
	tr := cfg.Tracer
	runID := cfg.RunID
	if runID == "" {
		runID = obs.NewRunID()
	}
	var cs *codecState
	if cfg.Codec.Enabled() {
		cs = newCodecState(cfg.Codec, len(clients), rec)
		cs.setTrace(tr)
	}
	allMoment := true
	for _, c := range clients {
		if c == nil {
			return nil, errors.New("fed: nil client")
		}
		if _, ok := c.(MomentClient); !ok {
			allMoment = false
		}
	}

	weights := make([]float64, len(clients))
	for i, c := range clients {
		w := c.NumSamples()
		if w <= 0 {
			w = 1 // parties with no training nodes still average in weakly
		}
		weights[i] = float64(w)
	}

	runSpan := tr.Root(obs.SpanRun)
	runSpan.SetAttr(obs.AttrRunID, runID)
	runSpan.SetAttr(obs.AttrRounds, cfg.Rounds)
	runSpan.SetAttr(obs.AttrParties, len(clients))
	runSpan.SetAttr(obs.AttrPolicy, cfg.Policy.String())
	runSpan.SetAttr(obs.AttrCodec, cfg.Codec.Name())
	// Publish the run span before the bootstrap parameter fetch so
	// pre-round work (the initial get_params, codec encodes outside any
	// round) anchors under fed/run rather than starting orphan traces.
	tr.SetActive(runSpan.Context())

	global := clients[0].Params().Clone()
	res := &Result{BestRound: -1, RunID: runID, Start: time.Now()}
	badRounds := 0
	sampler := rand.New(rand.NewSource(cfg.SampleSeed))
	st := newRunState(&cfg, clients, weights, rec)

	defer func() {
		tr.SetActive(obs.SpanContext{})
		runSpan.End()
	}()

	if cfg.Aggregation == AggAsync {
		// The buffered no-barrier engine owns its own round loop (async.go);
		// everything above — validation, weights, codec state, run span — is
		// shared, and the sync loop below is untouched by the mode.
		return runAsync(&cfg, st, cs, rec, tr, runSpan, global, res, sampler, evalEvery, allMoment)
	}

	startRound, samplerDraws := 0, 0
	if cfg.Resume != nil {
		g, err := st.restore(cfg.Resume, res, &badRounds, &startRound, &samplerDraws)
		if err != nil {
			return nil, err
		}
		global = g
		for i := 0; i < samplerDraws; i++ {
			sampler.Perm(len(clients)) // replay the sampler to its saved state
		}
	}

	needObs := cfg.Observer != nil || tr != nil
	for round := startRound; round < cfg.Rounds; round++ {
		stats := RoundStats{Round: round, Start: time.Now()}
		roundSpan := telemetry.StartSpan(rec, MetricRoundSeconds)
		rsp := tr.Start(runSpan.Context(), obs.SpanRound)
		rsp.SetAttr(obs.AttrRound, round)
		tr.SetActive(rsp.Context())
		resets0 := wireResets.Value()
		evaluated := false
		var trainIdx []int
		var trainSecs []float64
		st.beginRound()
		if cs != nil {
			cs.beginRound()
		}

		reach := st.reachable(round)

		// Partial participation: the round's active cohort, the first
		// ⌈fraction·M⌉ reachable clients in permutation order (identical to
		// the historical perm[:k] when nothing is benched).
		activeIdx := reach
		if cfg.ClientFraction > 0 && cfg.ClientFraction < 1 {
			k := ceilFraction(cfg.ClientFraction, len(clients))
			perm := sampler.Perm(len(clients))
			samplerDraws++
			sel := make([]int, 0, k)
			for _, idx := range perm {
				if st.benched(idx, round) {
					continue
				}
				sel = append(sel, idx)
				if len(sel) == k {
					break
				}
			}
			sort.Ints(sel)
			activeIdx = sel
		}

		roundErr := func() error {
			if err := st.quorum(round, len(reach)); err != nil {
				return err
			}

			// Broadcast global weights (Phase 1/3 of §3) to every
			// reachable client.
			sp := telemetry.StartSpan(rec, MetricBroadcastSeconds)
			osp := tr.Start(rsp.Context(), obs.SpanBroadcast)
			for _, i := range reach {
				c := clients[i]
				st.touched[i] = true
				if err := st.call(i, func() error { return c.SetParams(global) }); err != nil {
					if ferr := st.fail(i, fmt.Errorf("fed: broadcast to %s: %w", c.Name(), err)); ferr != nil {
						sp.End()
						osp.End()
						return ferr
					}
					continue
				}
				if cs != nil && !transportCoded(c) {
					n, err := cs.broadcast(i, global)
					if err != nil {
						sp.End()
						osp.End()
						return err
					}
					stats.BytesDown += n
				} else {
					stats.BytesDown += int64(global.Bytes())
				}
			}
			sp.End()
			osp.End()
			if err := st.quorum(round, len(st.aliveOf(activeIdx))); err != nil {
				return err
			}

			// Evaluate the freshly broadcast global model.
			if round%evalEvery == 0 || round == cfg.Rounds-1 {
				sp = telemetry.StartSpan(rec, MetricEvalSeconds)
				osp = tr.Start(rsp.Context(), obs.SpanEval)
				stats.ValAcc, stats.TestAcc = st.evaluate(st.aliveOf(reach), cfg.Sequential)
				sp.End()
				osp.End()
				evaluated = true
				rec.Gauge(MetricValAcc, stats.ValAcc)
				rec.Gauge(MetricTestAcc, stats.TestAcc)
				if stats.ValAcc > res.BestValAcc || res.BestRound < 0 {
					res.BestValAcc = stats.ValAcc
					res.TestAtBestVal = stats.TestAcc
					res.BestRound = round
					badRounds = 0
				} else {
					badRounds++
				}
			}

			// FedOMD statistics exchange (Algorithm 1 lines 3-18), over the
			// round's active cohort.
			if allMoment {
				sp = telemetry.StartSpan(rec, MetricMomentsSeconds)
				osp = tr.Start(rsp.Context(), obs.SpanMoments)
				up, down, _, _, err := st.momentExchange(round, st.aliveOf(activeIdx))
				sp.End()
				osp.End()
				if err != nil {
					return err
				}
				stats.BytesUp += up
				stats.BytesDown += down
			}

			// Local training, concurrently across surviving active parties.
			sp = telemetry.StartSpan(rec, MetricTrainSeconds)
			osp = tr.Start(rsp.Context(), obs.SpanTrain)
			trainIdx = st.aliveOf(activeIdx)
			losses := make([]float64, len(trainIdx))
			if needObs {
				trainSecs = make([]float64, len(trainIdx))
			}
			sub := st.clientsAt(trainIdx)
			errs := forEachClient(sub, cfg.Sequential, st.policy == FailFast, func(s int, c Client) error {
				clientSpan := telemetry.StartSpan(rec, MetricClientTrainSecs)
				tsp := tr.Start(rsp.Context(), obs.SpanClientTrain)
				tsp.SetAttr(obs.AttrParty, c.Name())
				var t0 time.Time
				if needObs {
					t0 = time.Now()
				}
				var loss float64
				err := st.call(trainIdx[s], func() error {
					l, e := c.TrainLocal(round)
					loss = l
					return e
				})
				if needObs {
					trainSecs[s] = time.Since(t0).Seconds()
				}
				clientSpan.End()
				tsp.End()
				if err != nil {
					return fmt.Errorf("fed: client %s round %d: %w", c.Name(), round, err)
				}
				losses[s] = loss
				return nil
			})
			sp.End()
			osp.End()
			if st.policy == FailFast {
				if err := collapseErrs(errs, cfg.Sequential || len(sub) == 1); err != nil {
					return err
				}
			} else {
				for s, e := range errs {
					if e != nil {
						_ = st.fail(trainIdx[s], e)
					}
				}
			}
			var lossSum, wSum float64
			for s, i := range trainIdx {
				if st.dropped[i] {
					continue
				}
				lossSum += weights[i] * losses[s]
				wSum += weights[i]
			}
			if wSum > 0 {
				stats.TrainLoss = lossSum / wSum
			}

			// Auxiliary state aggregation (e.g. SCAFFOLD control variates).
			sp = telemetry.StartSpan(rec, MetricAuxSeconds)
			err := st.auxExchange(st.aliveOf(activeIdx), &stats)
			sp.End()
			if err != nil {
				return err
			}

			// Upload and FedAvg (eq. 2 / Algorithm 1 lines 26-29) over the
			// survivors; nn.Average renormalizes their weights.
			sp = telemetry.StartSpan(rec, MetricAggregateSeconds)
			defer sp.End()
			osp = tr.Start(rsp.Context(), obs.SpanAggregate)
			defer osp.End()
			aggIdx := st.aliveOf(activeIdx)
			sets := make([]*nn.Params, 0, len(aggIdx))
			aggWeights := make([]float64, 0, len(aggIdx))
			// Decoded uploads borrow pooled matrices; they are consumed by
			// nn.Average (which writes a fresh aggregate), so release them
			// when the phase ends, on success and error paths alike.
			var pooled []*nn.Params
			defer func() {
				for _, p := range pooled {
					codec.PutParams(p)
				}
			}()
			for _, i := range aggIdx {
				c := clients[i]
				usp := tr.Start(rsp.Context(), obs.SpanClientUpload)
				usp.SetAttr(obs.AttrParty, c.Name())
				var p *nn.Params
				err := st.call(i, func() error { p = c.Params(); return nil })
				var encBytes int64 = -1
				if err == nil && cs != nil && !transportCoded(c) {
					// Round-trip the upload through the codec: the server
					// aggregates what the wire delivers, so lossy tiers
					// shape the aggregate here exactly as in deployment.
					var dec *nn.Params
					dec, encBytes, err = cs.upload(i, p)
					if err == nil {
						p = dec
						pooled = append(pooled, dec)
					}
				}
				if err == nil && !finiteParams(p) {
					err = ErrNonFinite
				}
				if err == nil && st.policy != FailFast {
					// Screen shape mismatches per client so one bad upload
					// cannot abort the whole aggregation. FailFast keeps the
					// historical aggregate-time error below.
					err = global.Compatible(p)
				}
				if err != nil {
					usp.SetAttr(obs.AttrErr, err.Error())
					usp.End()
					if ferr := st.fail(i, fmt.Errorf("fed: upload from %s: %w", c.Name(), err)); ferr != nil {
						return ferr
					}
					continue
				}
				sets = append(sets, p)
				aggWeights = append(aggWeights, weights[i])
				if encBytes >= 0 {
					stats.BytesUp += encBytes
					usp.SetAttr(obs.AttrBytesEnc, encBytes)
				} else {
					stats.BytesUp += int64(p.Bytes())
				}
				usp.End()
			}
			if err := st.quorum(round, len(sets)); err != nil {
				return err
			}
			agg, err := nn.Average(sets, aggWeights)
			if err != nil {
				return fmt.Errorf("fed: aggregation: %w", err)
			}
			global = agg
			return nil
		}()
		if roundErr != nil {
			if !errors.Is(roundErr, ErrQuorumLost) || cfg.QuorumPolicy != QuorumSkip {
				// The run is aborting mid-round: emit the round's trace record
				// (partial rounds still belong in the trace tree) but drop its
				// latency sample — an aborted round is not a round-duration
				// observation.
				roundSpan.Cancel()
				rsp.End()
				return nil, roundErr
			}
			// QuorumSkip: abandon the round's aggregation, keep the
			// previous global model, and carry on.
			stats.Degraded = true
		}

		st.endRound(round, &stats)
		stats.End = time.Now()
		roundSpan.End()
		rec.Count(MetricRounds, 1)
		rec.Count(MetricActiveClients, int64(len(activeIdx)))
		rec.Count(MetricBytesUp, stats.BytesUp)
		rec.Count(MetricBytesDown, stats.BytesDown)

		res.History = append(res.History, stats)
		res.TotalBytesUp += stats.BytesUp
		res.TotalBytesDown += stats.BytesDown

		if cfg.Observer != nil {
			benchedNow := 0
			for i := range clients {
				if st.benched(i, round+1) {
					benchedNow++
				}
			}
			o := obs.RoundObservation{
				Round:       round,
				TrainLoss:   stats.TrainLoss,
				ValAcc:      stats.ValAcc,
				TestAcc:     stats.TestAcc,
				BestValAcc:  res.BestValAcc,
				Evaluated:   evaluated,
				Degraded:    stats.Degraded,
				Dropped:     stats.Dropped,
				Quarantined: benchedNow,
				NonFinite:   st.nonFinite,
				CodecResets: int(wireResets.Value() - resets0),
				BytesUp:     stats.BytesUp,
				BytesDown:   stats.BytesDown,
			}
			for s, i := range trainIdx {
				o.Parties = append(o.Parties, obs.PartyObservation{
					Name:         clients[i].Name(),
					TrainSeconds: trainSecs[s],
					Dropped:      st.dropped[i],
				})
			}
			cfg.Observer.ObserveRound(rsp.Context(), o)
		}
		rsp.End()

		if cfg.CheckpointEvery > 0 && cfg.CheckpointWriter != nil && (round+1)%cfg.CheckpointEvery == 0 {
			if err := cfg.CheckpointWriter(st.snapshot(round+1, samplerDraws, global, res, badRounds)); err != nil {
				return nil, fmt.Errorf("fed: checkpoint after round %d: %w", round, err)
			}
		}
		if cfg.Patience > 0 && badRounds >= cfg.Patience {
			break
		}
	}
	res.FinalParams = global
	res.ClientFailures = st.failures

	if err := finalScore(&cfg, st, rec, res, global); err != nil {
		return nil, err
	}
	res.End = time.Now()
	return res, nil
}

// finalScore installs and scores the last aggregated global model: the last
// nn.Average output was never installed or evaluated inside the round loop,
// so without this pass the best model could silently be missed. It is a
// scoring pass outside the round accounting — no history row, no byte
// counters — and is shared by the sync and async engines.
func finalScore(cfg *Config, st *runState, rec telemetry.Recorder, res *Result, global *nn.Params) error {
	sp := telemetry.StartSpan(rec, MetricFinalEvalSeconds)
	finalIdx := make([]int, 0, len(st.clients))
	for i := range st.clients {
		c := st.clients[i]
		if err := st.call(i, func() error { return c.SetParams(global) }); err != nil {
			if st.policy == FailFast {
				sp.End()
				return fmt.Errorf("fed: final broadcast to %s: %w", c.Name(), err)
			}
			continue // score the final model on the parties that can hold it
		}
		finalIdx = append(finalIdx, i)
	}
	if len(finalIdx) > 0 {
		res.FinalValAcc, res.FinalTestAcc = st.evaluate(finalIdx, cfg.Sequential)
	}
	sp.End()
	if res.FinalValAcc > res.BestValAcc || res.BestRound < 0 {
		res.BestValAcc = res.FinalValAcc
		res.TestAtBestVal = res.FinalTestAcc
		res.BestRound = 0
		if n := len(res.History); n > 0 {
			res.BestRound = res.History[n-1].Round + 1
		}
	}
	return nil
}

// RunLocalOnly trains every client in isolation (the LocGCN baseline): no
// weight exchange, accuracy is the sample-weighted average of the local
// models, mirroring the paper's "averages the accuracy across various
// parties".
func RunLocalOnly(cfg Config, clients []Client) (*Result, error) {
	if len(clients) == 0 {
		return nil, errors.New("fed: no clients")
	}
	if cfg.Rounds <= 0 {
		return nil, fmt.Errorf("fed: Rounds must be positive, got %d", cfg.Rounds)
	}
	res := &Result{BestRound: -1}
	badRounds := 0
	for round := 0; round < cfg.Rounds; round++ {
		stats := RoundStats{Round: round}
		losses := make([]float64, len(clients))
		if err := collapseErrs(forEachClient(clients, cfg.Sequential, true, func(i int, c Client) error {
			loss, err := c.TrainLocal(round)
			if err != nil {
				return fmt.Errorf("fed: local client %s round %d: %w", c.Name(), round, err)
			}
			losses[i] = loss
			return nil
		}), cfg.Sequential || len(clients) == 1); err != nil {
			return nil, err
		}
		for _, l := range losses {
			stats.TrainLoss += l
		}
		stats.TrainLoss /= float64(len(clients))
		stats.ValAcc, stats.TestAcc = evaluate(clients, cfg.Sequential)
		if stats.ValAcc > res.BestValAcc || res.BestRound < 0 {
			res.BestValAcc = stats.ValAcc
			res.TestAtBestVal = stats.TestAcc
			res.BestRound = round
			badRounds = 0
		} else {
			badRounds++
		}
		res.History = append(res.History, stats)
		if cfg.Patience > 0 && badRounds >= cfg.Patience {
			break
		}
	}
	// Local-only training evaluates after every round, so the last row
	// already scores the final models.
	if n := len(res.History); n > 0 {
		res.FinalValAcc = res.History[n-1].ValAcc
		res.FinalTestAcc = res.History[n-1].TestAcc
	}
	res.FinalParams = clients[0].Params().Clone()
	return res, nil
}

// momentExchange runs Algorithm 1's two upload/download rounds over the
// indexed clients and installs the global statistics on the survivors. A
// party failing either stage — including a non-finite upload — is handled
// by the failure policy, and both aggregations renormalize over whoever is
// left. It returns the bytes moved plus the aggregated global statistics
// (nil when no party survived a stage) — the async engine bootstraps its
// stats state from one synchronous exchange; the sync loop ignores them.
func (st *runState) momentExchange(round int, idx []int) (up, down int64, gMeans []*mat.Dense, gCentral [][]*mat.Dense, err error) {
	m := len(idx)
	if m == 0 {
		return 0, 0, nil, nil, nil
	}
	allMeans := make([][]*mat.Dense, m) // [slot][layer]
	counts := make([]int, m)
	ok := make([]bool, m)
	for s, i := range idx {
		c := st.clients[i]
		mc := c.(MomentClient)
		var means []*mat.Dense
		var n int
		cerr := st.call(i, func() error {
			var e error
			means, n, e = mc.LocalMeans()
			return e
		})
		if cerr == nil && !finiteVecs(means) {
			cerr = ErrNonFinite
		}
		if cerr != nil {
			if ferr := st.fail(i, fmt.Errorf("fed: means from %s: %w", c.Name(), cerr)); ferr != nil {
				return up, down, nil, nil, ferr
			}
			continue
		}
		allMeans[s] = means
		counts[s] = n
		ok[s] = true
		up += bytesOfVecs(means) + 8
	}
	layers := -1
	for s := range idx {
		if !ok[s] {
			continue
		}
		if layers < 0 {
			layers = len(allMeans[s])
			continue
		}
		if len(allMeans[s]) != layers {
			mismatch := fmt.Errorf("fed: client %s reports %d layers, want %d", st.clients[idx[s]].Name(), len(allMeans[s]), layers)
			if ferr := st.fail(idx[s], mismatch); ferr != nil {
				return up, down, nil, nil, ferr
			}
			ok[s] = false
		}
	}
	if layers < 0 {
		return up, down, nil, nil, nil // no party survived the first stage
	}
	globalMeans := make([]*mat.Dense, layers)
	for l := 0; l < layers; l++ {
		var layerMeans []*mat.Dense
		var cnt []int
		for s := range idx {
			if ok[s] {
				layerMeans = append(layerMeans, allMeans[s][l])
				cnt = append(cnt, counts[s])
			}
		}
		gm, err := moments.AggregateMeans(layerMeans, cnt)
		if err != nil {
			return up, down, nil, nil, fmt.Errorf("fed: aggregating layer %d means: %w", l, err)
		}
		globalMeans[l] = gm
	}
	// Download global means, upload moments centred on them.
	allMoms := make([][][]*mat.Dense, m) // [slot][layer][order]
	for s, i := range idx {
		if !ok[s] {
			continue
		}
		c := st.clients[i]
		mc := c.(MomentClient)
		down += bytesOfVecs(globalMeans)
		var moms [][]*mat.Dense
		var n int
		cerr := st.call(i, func() error {
			var e error
			moms, n, e = mc.CentralAroundGlobal(globalMeans)
			return e
		})
		if cerr == nil && !finiteMoms(moms) {
			cerr = ErrNonFinite
		}
		if cerr != nil {
			if ferr := st.fail(i, fmt.Errorf("fed: moments from %s: %w", c.Name(), cerr)); ferr != nil {
				return up, down, nil, nil, ferr
			}
			ok[s] = false
			continue
		}
		allMoms[s] = moms
		counts[s] = n
		for _, layer := range moms {
			up += bytesOfVecs(layer)
		}
		up += 8
	}
	for s := range idx {
		if !ok[s] {
			continue
		}
		if len(allMoms[s]) != layers {
			mismatch := fmt.Errorf("fed: client %s moment layers %d, want %d", st.clients[idx[s]].Name(), len(allMoms[s]), layers)
			if ferr := st.fail(idx[s], mismatch); ferr != nil {
				return up, down, nil, nil, ferr
			}
			ok[s] = false
		}
	}
	survivors := 0
	for s := range idx {
		if ok[s] {
			survivors++
		}
	}
	if survivors == 0 {
		return up, down, globalMeans, nil, nil
	}
	globalCentral := make([][]*mat.Dense, layers)
	for l := 0; l < layers; l++ {
		perClient := make([][]*mat.Dense, 0, survivors)
		cnt := make([]int, 0, survivors)
		for s := range idx {
			if ok[s] {
				perClient = append(perClient, allMoms[s][l])
				cnt = append(cnt, counts[s])
			}
		}
		gc, err := moments.AggregateCentral(perClient, cnt)
		if err != nil {
			return up, down, nil, nil, fmt.Errorf("fed: aggregating layer %d moments: %w", l, err)
		}
		globalCentral[l] = gc
	}
	for s, i := range idx {
		if !ok[s] {
			continue
		}
		c := st.clients[i]
		mc := c.(MomentClient)
		cerr := st.call(i, func() error {
			mc.SetGlobalStats(globalMeans, globalCentral)
			return nil
		})
		if cerr != nil {
			if ferr := st.fail(i, fmt.Errorf("fed: global stats to %s: %w", c.Name(), cerr)); ferr != nil {
				return up, down, nil, nil, ferr
			}
			continue
		}
		for _, layer := range globalCentral {
			down += bytesOfVecs(layer)
		}
	}
	return up, down, globalMeans, globalCentral, nil
}

// auxExchange averages any auxiliary uploads from the indexed clients and
// redistributes them, excluding parties the failure policy drops mid-phase.
func (st *runState) auxExchange(idx []int, stats *RoundStats) error {
	var auxSets []*nn.Params
	var auxIdx []int
	for _, i := range idx {
		ac, isAux := st.clients[i].(AuxClient)
		if !isAux {
			continue
		}
		var aux *nn.Params
		cerr := st.call(i, func() error { aux = ac.UploadAux(); return nil })
		if cerr == nil && aux != nil && !finiteParams(aux) {
			cerr = ErrNonFinite
		}
		if cerr != nil {
			if ferr := st.fail(i, fmt.Errorf("fed: aux upload from %s: %w", ac.Name(), cerr)); ferr != nil {
				return ferr
			}
			continue
		}
		if aux == nil {
			continue
		}
		auxSets = append(auxSets, aux)
		auxIdx = append(auxIdx, i)
		stats.BytesUp += int64(aux.Bytes())
	}
	if len(auxSets) == 0 {
		return nil
	}
	ones := make([]float64, len(auxSets))
	for i := range ones {
		ones[i] = 1
	}
	globalAux, err := nn.Average(auxSets, ones)
	if err != nil {
		return fmt.Errorf("fed: aux aggregation: %w", err)
	}
	for _, i := range auxIdx {
		ac := st.clients[i].(AuxClient)
		cerr := st.call(i, func() error { return ac.DownloadAux(globalAux) })
		if cerr != nil {
			if ferr := st.fail(i, fmt.Errorf("fed: aux download to %s: %w", ac.Name(), cerr)); ferr != nil {
				return ferr
			}
			continue
		}
		stats.BytesDown += int64(globalAux.Bytes())
	}
	return nil
}

// evaluate returns the sample-weighted global validation and test accuracy.
func evaluate(clients []Client, sequential bool) (valAcc, testAcc float64) {
	type counts struct{ vc, vt, tc, tt int }
	results := make([]counts, len(clients))
	forEachClient(clients, sequential, false, func(i int, c Client) error {
		vc, vt := c.EvalVal()
		tc, tt := c.EvalTest()
		results[i] = counts{vc, vt, tc, tt}
		return nil
	})
	var vc, vt, tc, tt int
	for _, r := range results {
		vc += r.vc
		vt += r.vt
		tc += r.tc
		tt += r.tt
	}
	if vt > 0 {
		valAcc = float64(vc) / float64(vt)
	}
	if tt > 0 {
		testAcc = float64(tc) / float64(tt)
	}
	return valAcc, testAcc
}

// forEachClient runs f over clients, concurrently unless sequential, with at
// most GOMAXPROCS workers. It returns one error slot per client so callers
// can attribute each failure to the party that caused it (the DropRound and
// Quarantine policies need the index, not just a joined error). In
// sequential mode stopEarly short-circuits at the first failure — the
// historical fail-fast order; concurrent mode always drives every client.
func forEachClient(clients []Client, sequential, stopEarly bool, f func(int, Client) error) []error {
	errs := make([]error, len(clients))
	if sequential || len(clients) == 1 {
		for i, c := range clients {
			errs[i] = f(i, c)
			if errs[i] != nil && stopEarly {
				break
			}
		}
		return errs
	}
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i, c := range clients {
		wg.Add(1)
		go func(i int, c Client) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			errs[i] = f(i, c)
		}(i, c)
	}
	wg.Wait()
	return errs
}

// ceilFraction returns ⌈f·m⌉ clamped to [1, m] — the partial-participation
// cohort size. Products that land within one ulp-scale tolerance of an
// integer are snapped to it first, so mathematically exact cases like
// f = 1/3, m = 3 (product 0.999…) or f = 0.1, m = 30 (product 3.000…04)
// do not gain a spurious extra client from float rounding.
func ceilFraction(f float64, m int) int {
	p := f * float64(m)
	if r := math.Round(p); r > 0 && math.Abs(p-r) < 1e-9*r {
		p = r
	}
	k := int(math.Ceil(p))
	if k < 1 {
		k = 1
	}
	if k > m {
		k = m
	}
	return k
}

func bytesOfVecs(vs []*mat.Dense) int64 {
	var total int64
	for _, v := range vs {
		total += int64(8 * v.Rows() * v.Cols())
	}
	return total
}
