// Package fed implements the federated-learning simulation runtime: the
// synchronous FedAvg server of paper §3, concurrent local training of the M
// parties (each client trains in its own goroutine within a round), the
// 2-round mean/moment exchange of Algorithm 1, optional auxiliary-state
// aggregation (SCAFFOLD control variates), byte-level communication
// accounting, and early stopping with patience.
package fed

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"fedomd/internal/mat"
	"fedomd/internal/moments"
	"fedomd/internal/nn"
	"fedomd/internal/telemetry"
)

// Client is one federated participant. Implementations own their local graph
// data and model and must be safe to drive from a single goroutine at a time
// (the server never calls a client concurrently with itself).
type Client interface {
	// Name identifies the client in logs and errors.
	Name() string
	// NumSamples is the FedAvg aggregation weight (local training-node count).
	NumSamples() int
	// Params exposes the live local parameter set; the server reads it after
	// local training to aggregate.
	Params() *nn.Params
	// SetParams overwrites the local model with the global weights.
	SetParams(global *nn.Params) error
	// TrainLocal runs the negotiated local epochs for one round and returns
	// the final local training loss.
	TrainLocal(round int) (float64, error)
	// EvalVal and EvalTest return (correct, total) on the local masks.
	EvalVal() (int, int)
	EvalTest() (int, int)
}

// MomentClient is implemented by clients that participate in FedOMD's
// 2-round statistics exchange (Algorithm 1 lines 3-18). Layer indices run
// over the hidden representations Z^1..Z^{L-1}.
type MomentClient interface {
	Client
	// LocalMeans returns the per-layer hidden-feature means and the local
	// sample count (Algorithm 1 lines 3-8).
	LocalMeans() (means []*mat.Dense, n int, err error)
	// CentralAroundGlobal returns, per layer, the central moments of orders
	// 2..K computed around the received global means (lines 12-15).
	CentralAroundGlobal(globalMeans []*mat.Dense) (moms [][]*mat.Dense, n int, err error)
	// SetGlobalStats delivers the aggregated global statistics the client
	// uses in its CMD loss during TrainLocal (lines 16-18).
	SetGlobalStats(means []*mat.Dense, central [][]*mat.Dense)
}

// AuxClient is implemented by clients exchanging auxiliary state beyond model
// weights; the server aggregates uploads by simple averaging and broadcasts
// the aggregate (SCAFFOLD's control variates use this).
type AuxClient interface {
	Client
	UploadAux() *nn.Params
	DownloadAux(global *nn.Params) error
}

// Config controls a federated run.
type Config struct {
	// Rounds is the maximum number of communication rounds (the paper's
	// "epoch" with communication interval 1).
	Rounds int
	// Patience stops training after this many rounds without a validation
	// improvement; 0 disables early stopping.
	Patience int
	// Sequential disables concurrent client training (ablation knob).
	Sequential bool
	// EvalEvery controls how often validation/test accuracy is measured;
	// 1 (default when 0) evaluates every round.
	EvalEvery int
	// ClientFraction selects ⌈fraction·M⌉ clients uniformly at random each
	// round to train and aggregate (standard FL partial participation).
	// 0 explicitly means full participation (every client trains every
	// round); otherwise the fraction must lie in (0, 1].
	ClientFraction float64
	// SampleSeed makes the per-round client sampling deterministic.
	SampleSeed int64
	// Recorder receives the run's telemetry: per-round per-phase spans
	// (broadcast, eval, moments, train, aux, aggregate), per-client
	// train-duration histograms, and communication counters. Nil disables
	// telemetry at zero cost.
	Recorder telemetry.Recorder
}

// Telemetry metric names emitted by Run. Phase spans are histograms of
// per-round durations in seconds; bytes are monotonic counters.
const (
	MetricRoundSeconds     = "fed/round_seconds"
	MetricBroadcastSeconds = "fed/phase/broadcast_seconds"
	MetricEvalSeconds      = "fed/phase/eval_seconds"
	MetricMomentsSeconds   = "fed/phase/moments_seconds"
	MetricTrainSeconds     = "fed/phase/train_seconds"
	MetricAuxSeconds       = "fed/phase/aux_seconds"
	MetricAggregateSeconds = "fed/phase/aggregate_seconds"
	MetricClientTrainSecs  = "fed/client/train_seconds"
	MetricBytesUp          = "fed/bytes_up"
	MetricBytesDown        = "fed/bytes_down"
	MetricRounds           = "fed/rounds"
	MetricActiveClients    = "fed/active_clients"
	MetricValAcc           = "fed/val_acc"
	MetricTestAcc          = "fed/test_acc"
)

// RoundStats is one row of the training history (Figure 5 data).
type RoundStats struct {
	Round     int
	TrainLoss float64
	ValAcc    float64
	TestAcc   float64
	BytesUp   int64
	BytesDown int64
}

// Result summarises a run.
type Result struct {
	History []RoundStats
	// BestValAcc is the best validation accuracy seen and TestAtBestVal the
	// test accuracy at that round — the reported metric.
	BestValAcc    float64
	TestAtBestVal float64
	BestRound     int
	// FinalParams is the last aggregated global model.
	FinalParams                  *nn.Params
	TotalBytesUp, TotalBytesDown int64
}

// Run executes synchronous federated training over the clients. All clients
// must be non-nil; if every client implements MomentClient the FedOMD
// statistics exchange runs each round before local training.
func Run(cfg Config, clients []Client) (*Result, error) {
	if len(clients) == 0 {
		return nil, errors.New("fed: no clients")
	}
	if cfg.Rounds <= 0 {
		return nil, fmt.Errorf("fed: Rounds must be positive, got %d", cfg.Rounds)
	}
	evalEvery := cfg.EvalEvery
	if evalEvery <= 0 {
		evalEvery = 1
	}
	if cfg.ClientFraction < 0 || cfg.ClientFraction > 1 {
		return nil, fmt.Errorf("fed: ClientFraction must be 0 (full participation) or in (0, 1], got %v", cfg.ClientFraction)
	}
	rec := telemetry.Or(cfg.Recorder)
	allMoment := true
	for _, c := range clients {
		if c == nil {
			return nil, errors.New("fed: nil client")
		}
		if _, ok := c.(MomentClient); !ok {
			allMoment = false
		}
	}

	weights := make([]float64, len(clients))
	for i, c := range clients {
		w := c.NumSamples()
		if w <= 0 {
			w = 1 // parties with no training nodes still average in weakly
		}
		weights[i] = float64(w)
	}

	global := clients[0].Params().Clone()
	res := &Result{BestRound: -1}
	badRounds := 0
	sampler := rand.New(rand.NewSource(cfg.SampleSeed))

	for round := 0; round < cfg.Rounds; round++ {
		stats := RoundStats{Round: round}
		roundSpan := telemetry.StartSpan(rec, MetricRoundSeconds)

		// Partial participation: the round's active cohort.
		active := clients
		activeWeights := weights
		if cfg.ClientFraction > 0 && cfg.ClientFraction < 1 {
			k := ceilFraction(cfg.ClientFraction, len(clients))
			perm := sampler.Perm(len(clients))[:k]
			sort.Ints(perm)
			active = make([]Client, k)
			activeWeights = make([]float64, k)
			for i, idx := range perm {
				active[i] = clients[idx]
				activeWeights[i] = weights[idx]
			}
		}

		// Broadcast global weights (Phase 1/3 of §3).
		sp := telemetry.StartSpan(rec, MetricBroadcastSeconds)
		for _, c := range clients {
			if err := c.SetParams(global); err != nil {
				return nil, fmt.Errorf("fed: broadcast to %s: %w", c.Name(), err)
			}
			stats.BytesDown += int64(global.Bytes())
		}
		sp.End()

		// Evaluate the freshly broadcast global model.
		if round%evalEvery == 0 || round == cfg.Rounds-1 {
			sp = telemetry.StartSpan(rec, MetricEvalSeconds)
			stats.ValAcc, stats.TestAcc = evaluate(clients, cfg.Sequential)
			sp.End()
			rec.Gauge(MetricValAcc, stats.ValAcc)
			rec.Gauge(MetricTestAcc, stats.TestAcc)
			if stats.ValAcc > res.BestValAcc || res.BestRound < 0 {
				res.BestValAcc = stats.ValAcc
				res.TestAtBestVal = stats.TestAcc
				res.BestRound = round
				badRounds = 0
			} else {
				badRounds++
			}
		}

		// FedOMD statistics exchange (Algorithm 1 lines 3-18), over the
		// round's active cohort.
		if allMoment {
			sp = telemetry.StartSpan(rec, MetricMomentsSeconds)
			up, down, err := momentExchange(active)
			sp.End()
			if err != nil {
				return nil, err
			}
			stats.BytesUp += up
			stats.BytesDown += down
		}

		// Local training, concurrently across active parties.
		sp = telemetry.StartSpan(rec, MetricTrainSeconds)
		losses := make([]float64, len(active))
		if err := forEachClient(active, cfg.Sequential, func(i int, c Client) error {
			clientSpan := telemetry.StartSpan(rec, MetricClientTrainSecs)
			loss, err := c.TrainLocal(round)
			clientSpan.End()
			if err != nil {
				return fmt.Errorf("fed: client %s round %d: %w", c.Name(), round, err)
			}
			losses[i] = loss
			return nil
		}); err != nil {
			return nil, err
		}
		sp.End()
		var lossSum, wSum float64
		for i, l := range losses {
			lossSum += activeWeights[i] * l
			wSum += activeWeights[i]
		}
		stats.TrainLoss = lossSum / wSum

		// Auxiliary state aggregation (e.g. SCAFFOLD control variates).
		sp = telemetry.StartSpan(rec, MetricAuxSeconds)
		if err := auxExchange(active, &stats); err != nil {
			return nil, err
		}
		sp.End()

		// Upload and FedAvg (eq. 2 / Algorithm 1 lines 26-29).
		sp = telemetry.StartSpan(rec, MetricAggregateSeconds)
		sets := make([]*nn.Params, len(active))
		for i, c := range active {
			sets[i] = c.Params()
			stats.BytesUp += int64(sets[i].Bytes())
		}
		agg, err := nn.Average(sets, activeWeights)
		if err != nil {
			return nil, fmt.Errorf("fed: aggregation: %w", err)
		}
		global = agg
		sp.End()

		roundSpan.End()
		rec.Count(MetricRounds, 1)
		rec.Count(MetricActiveClients, int64(len(active)))
		rec.Count(MetricBytesUp, stats.BytesUp)
		rec.Count(MetricBytesDown, stats.BytesDown)

		res.History = append(res.History, stats)
		res.TotalBytesUp += stats.BytesUp
		res.TotalBytesDown += stats.BytesDown
		if cfg.Patience > 0 && badRounds >= cfg.Patience {
			break
		}
	}
	res.FinalParams = global
	return res, nil
}

// RunLocalOnly trains every client in isolation (the LocGCN baseline): no
// weight exchange, accuracy is the sample-weighted average of the local
// models, mirroring the paper's "averages the accuracy across various
// parties".
func RunLocalOnly(cfg Config, clients []Client) (*Result, error) {
	if len(clients) == 0 {
		return nil, errors.New("fed: no clients")
	}
	if cfg.Rounds <= 0 {
		return nil, fmt.Errorf("fed: Rounds must be positive, got %d", cfg.Rounds)
	}
	res := &Result{BestRound: -1}
	badRounds := 0
	for round := 0; round < cfg.Rounds; round++ {
		stats := RoundStats{Round: round}
		losses := make([]float64, len(clients))
		if err := forEachClient(clients, cfg.Sequential, func(i int, c Client) error {
			loss, err := c.TrainLocal(round)
			if err != nil {
				return fmt.Errorf("fed: local client %s round %d: %w", c.Name(), round, err)
			}
			losses[i] = loss
			return nil
		}); err != nil {
			return nil, err
		}
		for _, l := range losses {
			stats.TrainLoss += l
		}
		stats.TrainLoss /= float64(len(clients))
		stats.ValAcc, stats.TestAcc = evaluate(clients, cfg.Sequential)
		if stats.ValAcc > res.BestValAcc || res.BestRound < 0 {
			res.BestValAcc = stats.ValAcc
			res.TestAtBestVal = stats.TestAcc
			res.BestRound = round
			badRounds = 0
		} else {
			badRounds++
		}
		res.History = append(res.History, stats)
		if cfg.Patience > 0 && badRounds >= cfg.Patience {
			break
		}
	}
	res.FinalParams = clients[0].Params().Clone()
	return res, nil
}

// momentExchange runs Algorithm 1's two upload/download rounds and installs
// the global statistics on every client. It returns the bytes moved.
func momentExchange(clients []Client) (up, down int64, err error) {
	m := len(clients)
	allMeans := make([][]*mat.Dense, m) // [client][layer]
	counts := make([]int, m)
	for i, c := range clients {
		mc := c.(MomentClient)
		means, n, err := mc.LocalMeans()
		if err != nil {
			return up, down, fmt.Errorf("fed: means from %s: %w", c.Name(), err)
		}
		allMeans[i] = means
		counts[i] = n
		up += bytesOfVecs(means) + 8
	}
	layers := len(allMeans[0])
	for i := range allMeans {
		if len(allMeans[i]) != layers {
			return up, down, fmt.Errorf("fed: client %s reports %d layers, want %d", clients[i].Name(), len(allMeans[i]), layers)
		}
	}
	globalMeans := make([]*mat.Dense, layers)
	for l := 0; l < layers; l++ {
		layerMeans := make([]*mat.Dense, m)
		for i := range allMeans {
			layerMeans[i] = allMeans[i][l]
		}
		gm, err := moments.AggregateMeans(layerMeans, counts)
		if err != nil {
			return up, down, fmt.Errorf("fed: aggregating layer %d means: %w", l, err)
		}
		globalMeans[l] = gm
	}
	// Download global means, upload moments centred on them.
	allMoms := make([][][]*mat.Dense, m) // [client][layer][order]
	for i, c := range clients {
		mc := c.(MomentClient)
		down += bytesOfVecs(globalMeans)
		moms, n, err := mc.CentralAroundGlobal(globalMeans)
		if err != nil {
			return up, down, fmt.Errorf("fed: moments from %s: %w", c.Name(), err)
		}
		allMoms[i] = moms
		counts[i] = n
		for _, layer := range moms {
			up += bytesOfVecs(layer)
		}
		up += 8
	}
	globalCentral := make([][]*mat.Dense, layers)
	for l := 0; l < layers; l++ {
		perClient := make([][]*mat.Dense, m)
		for i := range allMoms {
			if len(allMoms[i]) != layers {
				return up, down, fmt.Errorf("fed: client %s moment layers %d, want %d", clients[i].Name(), len(allMoms[i]), layers)
			}
			perClient[i] = allMoms[i][l]
		}
		gc, err := moments.AggregateCentral(perClient, counts)
		if err != nil {
			return up, down, fmt.Errorf("fed: aggregating layer %d moments: %w", l, err)
		}
		globalCentral[l] = gc
	}
	for _, c := range clients {
		c.(MomentClient).SetGlobalStats(globalMeans, globalCentral)
		for _, layer := range globalCentral {
			down += bytesOfVecs(layer)
		}
	}
	return up, down, nil
}

// auxExchange averages any auxiliary uploads and redistributes them.
func auxExchange(clients []Client, stats *RoundStats) error {
	var auxSets []*nn.Params
	var auxClients []AuxClient
	for _, c := range clients {
		if ac, ok := c.(AuxClient); ok {
			aux := ac.UploadAux()
			if aux == nil {
				continue
			}
			auxSets = append(auxSets, aux)
			auxClients = append(auxClients, ac)
			stats.BytesUp += int64(aux.Bytes())
		}
	}
	if len(auxSets) == 0 {
		return nil
	}
	ones := make([]float64, len(auxSets))
	for i := range ones {
		ones[i] = 1
	}
	globalAux, err := nn.Average(auxSets, ones)
	if err != nil {
		return fmt.Errorf("fed: aux aggregation: %w", err)
	}
	for _, ac := range auxClients {
		if err := ac.DownloadAux(globalAux); err != nil {
			return fmt.Errorf("fed: aux download to %s: %w", ac.Name(), err)
		}
		stats.BytesDown += int64(globalAux.Bytes())
	}
	return nil
}

// evaluate returns the sample-weighted global validation and test accuracy.
func evaluate(clients []Client, sequential bool) (valAcc, testAcc float64) {
	type counts struct{ vc, vt, tc, tt int }
	results := make([]counts, len(clients))
	_ = forEachClient(clients, sequential, func(i int, c Client) error {
		vc, vt := c.EvalVal()
		tc, tt := c.EvalTest()
		results[i] = counts{vc, vt, tc, tt}
		return nil
	})
	var vc, vt, tc, tt int
	for _, r := range results {
		vc += r.vc
		vt += r.vt
		tc += r.tc
		tt += r.tt
	}
	if vt > 0 {
		valAcc = float64(vc) / float64(vt)
	}
	if tt > 0 {
		testAcc = float64(tc) / float64(tt)
	}
	return valAcc, testAcc
}

// forEachClient runs f over clients, concurrently unless sequential, with at
// most GOMAXPROCS workers. The first error wins.
func forEachClient(clients []Client, sequential bool, f func(int, Client) error) error {
	if sequential || len(clients) == 1 {
		for i, c := range clients {
			if err := f(i, c); err != nil {
				return err
			}
		}
		return nil
	}
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	errs := make([]error, len(clients))
	var wg sync.WaitGroup
	for i, c := range clients {
		wg.Add(1)
		go func(i int, c Client) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			errs[i] = f(i, c)
		}(i, c)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// ceilFraction returns ⌈f·m⌉ clamped to [1, m] — the partial-participation
// cohort size. Products that land within one ulp-scale tolerance of an
// integer are snapped to it first, so mathematically exact cases like
// f = 1/3, m = 3 (product 0.999…) or f = 0.1, m = 30 (product 3.000…04)
// do not gain a spurious extra client from float rounding.
func ceilFraction(f float64, m int) int {
	p := f * float64(m)
	if r := math.Round(p); r > 0 && math.Abs(p-r) < 1e-9*r {
		p = r
	}
	k := int(math.Ceil(p))
	if k < 1 {
		k = 1
	}
	if k > m {
		k = m
	}
	return k
}

func bytesOfVecs(vs []*mat.Dense) int64 {
	var total int64
	for _, v := range vs {
		total += int64(8 * v.Rows() * v.Cols())
	}
	return total
}
