package fed

// transport.go implements a distributed deployment of the same federated
// protocol Run drives in-process: the server listens on a net.Listener, each
// party connects from its own process (or goroutine) and serves its local
// client over a length-delimited gob RPC stream, and the coordinator drives
// the connections through proxy Clients so Run's round logic — FedAvg,
// moment exchange, aux state, accounting — is reused verbatim.
//
// One request is in flight per connection at a time, matching Run's
// guarantee that a client is never called concurrently with itself.

import (
	"encoding/gob"
	"errors"
	"fmt"
	"hash/fnv"
	"net"
	"sync/atomic"
	"time"

	"fedomd/internal/codec"
	"fedomd/internal/mat"
	"fedomd/internal/nn"
	"fedomd/internal/obs"
	"fedomd/internal/telemetry"
)

// MetricWireResets counts wire-codec reference-chain resets (either side
// losing its delta base: reconnects, failed broadcasts, decode desyncs). A
// process-global counter so Run can diff it per round for the health
// monitor's codec_resets rule without threading state through the proxies.
const MetricWireResets = "fed/codec_resets"

var wireResets = telemetry.NewCounter(MetricWireResets)

// TransportOptions configures the coordinator side of the RPC transport.
type TransportOptions struct {
	// Recorder receives per-op RPC latency histograms and payload byte
	// counters ("rpc/coord/…"). Nil disables transport telemetry.
	Recorder telemetry.Recorder
	// Tracer emits one "rpc/coord/call" span per request, parented at the
	// tracer's active context (the current round span), and stamps the
	// trace/span IDs into the request frame so the party's handling spans
	// link under the coordinator's round. Nil disables trace propagation.
	Tracer *obs.Tracer
	// ReadTimeout bounds each wait for a party's reply. It covers the
	// party's compute for that request — TrainLocal included — so size it
	// above the slowest expected local epoch. 0 means no deadline (a hung
	// party then stalls the synchronous round forever, the pre-deadline
	// behaviour).
	ReadTimeout time.Duration
	// WriteTimeout bounds each request write. 0 means no deadline.
	WriteTimeout time.Duration
	// MaxRetries is how many times a failed request is retried after
	// reconnecting. 0 disables retry. Retries require Reconnect: a gob
	// stream cannot be resumed on a connection that failed mid-message, so
	// every retry runs on a fresh connection. Application-level errors
	// (the party handled the request and said no), deadline expiries (left
	// to the failure policy), and Shutdown are never retried.
	MaxRetries int
	// RetryBackoff is the initial backoff before the first retry; it
	// doubles per attempt, is capped at 5s, and carries a deterministic
	// ±50% jitter derived from RetrySeed and the party name. 0 means 50ms.
	RetryBackoff time.Duration
	// RetrySeed seeds the jitter so chaotic runs stay reproducible.
	RetrySeed int64
	// Reconnect returns a fresh connection to the named party. The
	// transport completes the hello handshake on it and verifies the name
	// before reissuing the request.
	Reconnect func(name string) (net.Conn, error)
	// Codec requests a wire codec for parameter payloads. During the hello
	// handshake each party advertises the protocol versions it speaks; a
	// party advertising v1 is sent the codec choice and both sides switch
	// SetParams/GetParams to length-delimited codec blobs (see
	// internal/codec). A party advertising nothing — an old binary — keeps
	// the v0 raw-gob format on its connection; the two formats coexist
	// per-connection. The zero value disables negotiation entirely.
	Codec codec.Options
}

// ServeOptions configures the party side of the RPC transport.
type ServeOptions struct {
	// Recorder receives per-op request-handling histograms and payload
	// byte counters ("rpc/party/…"). Nil disables transport telemetry.
	Recorder telemetry.Recorder
	// Tracer emits one "rpc/party/handle" span per request, parented at the
	// trace context the coordinator stamped into the frame — the party's
	// half of cross-process trace propagation. Nil disables it.
	Tracer *obs.Tracer
	// DialTimeout bounds the initial connection to the coordinator
	// (ServeClientOpts only). 0 means the 30s default.
	DialTimeout time.Duration
	// ReadTimeout bounds each wait for the next coordinator request. Note
	// a party legitimately sits idle while its peers finish the round, so
	// this must cover the whole round, not one request. 0 (recommended)
	// means no deadline.
	ReadTimeout time.Duration
	// WriteTimeout bounds each response write. 0 means no deadline.
	WriteTimeout time.Duration
}

// countingConn wraps a net.Conn with byte counters so payload sizes per
// message can be measured at the transport layer, where gob streams directly
// to the socket.
type countingConn struct {
	net.Conn
	rx, tx atomic.Int64
}

func (c *countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.rx.Add(int64(n))
	return n, err
}

func (c *countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.tx.Add(int64(n))
	return n, err
}

// wireDense is the gob form of a dense matrix.
type wireDense struct {
	Rows, Cols int
	Data       []float64
}

func toWire(m *mat.Dense) wireDense {
	if m == nil {
		return wireDense{}
	}
	// gob serialises Data inside Encode and holds no reference afterwards,
	// and the encode completes before the call returns, so the wire struct
	// can alias the matrix's backing array — no copy.
	return wireDense{Rows: m.Rows(), Cols: m.Cols(), Data: m.Data()}
}

func fromWire(w wireDense) *mat.Dense {
	if w.Rows == 0 && w.Cols == 0 {
		return mat.New(0, 0)
	}
	// Every message decodes into a fresh zero-valued struct, so gob
	// allocated Data specifically for this matrix: wrap it — no copy.
	return mat.NewFromData(w.Rows, w.Cols, w.Data)
}

// wireParams is the gob form of a parameter set.
type wireParams struct {
	Names []string
	Mats  []wireDense
}

func paramsToWire(p *nn.Params) *wireParams {
	if p == nil {
		return nil
	}
	w := &wireParams{Names: p.Names()}
	for i := 0; i < p.Len(); i++ {
		w.Mats = append(w.Mats, toWire(p.At(i)))
	}
	return w
}

func paramsFromWire(w *wireParams) *nn.Params {
	if w == nil {
		return nil
	}
	p := nn.NewParams()
	for i, name := range w.Names {
		p.Add(name, fromWire(w.Mats[i]))
	}
	return p
}

func vecsToWire(vs []*mat.Dense) []wireDense {
	out := make([]wireDense, len(vs))
	for i, v := range vs {
		out[i] = toWire(v)
	}
	return out
}

func vecsFromWire(ws []wireDense) []*mat.Dense {
	out := make([]*mat.Dense, len(ws))
	for i, w := range ws {
		out[i] = fromWire(w)
	}
	return out
}

// rpc operation codes.
const (
	opSetParams      = "SetParams"
	opTrainLocal     = "TrainLocal"
	opEvalVal        = "EvalVal"
	opEvalTest       = "EvalTest"
	opGetParams      = "GetParams"
	opLocalMeans     = "LocalMeans"
	opCentralMoments = "CentralMoments"
	opSetGlobalStats = "SetGlobalStats"
	opUploadAux      = "UploadAux"
	opDownloadAux    = "DownloadAux"
	opShutdown       = "Shutdown"
	opNegotiateCodec = "NegotiateCodec"
)

// opMetricSuffix maps an rpc op code to the snake_case segment used in
// telemetry keys, so per-op metric series follow the pkg/snake_case
// convention regardless of the wire spelling (caught by fedomdvet's
// telemetrykey analyzer: the PascalCase op codes used to leak into key
// names and fork the dashboard naming scheme).
func opMetricSuffix(op string) string {
	switch op {
	case opSetParams:
		return "set_params"
	case opTrainLocal:
		return "train_local"
	case opEvalVal:
		return "eval_val"
	case opEvalTest:
		return "eval_test"
	case opGetParams:
		return "get_params"
	case opLocalMeans:
		return "local_means"
	case opCentralMoments:
		return "central_moments"
	case opSetGlobalStats:
		return "set_global_stats"
	case opUploadAux:
		return "upload_aux"
	case opDownloadAux:
		return "download_aux"
	case opShutdown:
		return "shutdown"
	case opNegotiateCodec:
		return "negotiate_codec"
	}
	return "unknown"
}

// MetricRPCRetries counts coordinator-side RPC retries after reconnects.
const MetricRPCRetries = "rpc/coord/retries"

// appError is an application-level error relayed verbatim from the party.
// The request was delivered and handled, so the transport never retries it.
type appError string

func (e appError) Error() string { return string(e) }

// hello is the first message a party sends after connecting.
//
// Field evolution is safe under gob: an old coordinator skips fields it does
// not know, and an old party simply never sets them — which is exactly the
// negotiation fallback (no Codecs advertised → v0 raw format).
type hello struct {
	Name       string
	NumSamples int
	Moment     bool // implements MomentClient
	Aux        bool // implements AuxClient
	// Codecs advertises the wire protocol versions this party speaks
	// (codec.WireVersions). Empty on v0 binaries.
	Codecs []uint8
}

// rpcRequest is a coordinator→party message.
type rpcRequest struct {
	Op      string
	Round   int
	Params  *wireParams
	Means   []wireDense
	Central [][]wireDense
	// Blob carries a codec-encoded parameter payload for opSetParams once a
	// codec is negotiated; Params stays nil then.
	Blob []byte
	// CodecKind/CodecBits/CodecTopK carry the coordinator's codec choice in
	// an opNegotiateCodec request.
	CodecKind, CodecBits uint8
	CodecTopK            float64
	// TraceID/SpanID carry the coordinator's trace context so party-side
	// spans parent under the round that issued the request. Zero (including
	// frames from pre-tracing coordinators, which gob decodes as zero)
	// means "no context" and roots a local trace instead.
	TraceID, SpanID uint64
}

// rpcResponse is a party→coordinator reply.
type rpcResponse struct {
	Err            string
	Loss           float64
	Correct, Total int
	Params         *wireParams
	Means          []wireDense
	Central        [][]wireDense
	N              int
	// Blob carries the codec-encoded upload for opGetParams once a codec is
	// negotiated; Params stays nil then.
	Blob []byte
}

// ServeClient connects to the coordinator at addr and serves the local
// client until the coordinator sends Shutdown or the connection closes.
// It returns nil on a clean shutdown.
func ServeClient(addr string, c Client) error {
	return ServeClientOpts(addr, c, ServeOptions{})
}

// ServeClientOpts is ServeClient with explicit transport options.
func ServeClientOpts(addr string, c Client, opts ServeOptions) error {
	dial := opts.DialTimeout
	if dial <= 0 {
		dial = 30 * time.Second
	}
	conn, err := net.DialTimeout("tcp", addr, dial)
	if err != nil {
		return fmt.Errorf("fed: dial coordinator: %w", err)
	}
	defer conn.Close()
	return ServeClientConnOpts(conn, c, opts)
}

// ServeClientConn serves the client over an established connection (exported
// so tests and in-process demos can use net.Pipe or loopback listeners).
func ServeClientConn(conn net.Conn, c Client) error {
	return ServeClientConnOpts(conn, c, ServeOptions{})
}

// ServeClientConnOpts is ServeClientConn with explicit transport options:
// per-request read/write deadlines and a Recorder for per-op handling time
// and payload sizes.
func ServeClientConnOpts(conn net.Conn, c Client, opts ServeOptions) error {
	rec := telemetry.Or(opts.Recorder)
	tracer := opts.Tracer
	cc := &countingConn{Conn: conn}
	enc := gob.NewEncoder(cc)
	dec := gob.NewDecoder(cc)
	mc, isMoment := c.(MomentClient)
	ac, isAux := c.(AuxClient)
	if err := enc.Encode(hello{Name: c.Name(), NumSamples: c.NumSamples(), Moment: isMoment, Aux: isAux,
		Codecs: codec.WireVersions()}); err != nil {
		return fmt.Errorf("fed: handshake: %w", err)
	}
	// Wire-codec state, armed by opNegotiateCodec: the uplink encoder (which
	// owns this party's error-feedback residuals) and the reference state —
	// the last global this party decoded, which both directions encode
	// against. The coordinator tracks the mirror of this state per party and
	// falls back to absolute blobs whenever either side loses it (fresh
	// connection, failed broadcast), so a desync heals within one exchange.
	var wcEnc *codec.Encoder
	var wcRef *nn.Params
	for {
		if opts.ReadTimeout > 0 {
			_ = conn.SetReadDeadline(time.Now().Add(opts.ReadTimeout))
		}
		rx0 := cc.rx.Load()
		var req rpcRequest
		if err := dec.Decode(&req); err != nil {
			return fmt.Errorf("fed: reading request: %w", err)
		}
		var resp rpcResponse
		handleSpan := telemetry.StartSpan(rec, "rpc/party/handle_seconds/"+opMetricSuffix(req.Op)) //fedomdvet:ignore per-op series over the closed opMetricSuffix set; base key and suffixes are constants
		// Party-side span, parented at the coordinator's stamped context —
		// the cross-process causal link. Published as the active context so
		// codec encode spans nest under the request that triggered them.
		reqCtx := obs.SpanContext{Trace: obs.TraceID(req.TraceID), Span: obs.SpanID(req.SpanID)}
		tsp := tracer.Start(reqCtx, obs.SpanPartyHandle)
		tsp.SetAttr(obs.AttrOp, opMetricSuffix(req.Op))
		tracer.SetActive(tsp.Context())
		switch req.Op {
		case opShutdown:
			handleSpan.End()
			tsp.End()
			if opts.WriteTimeout > 0 {
				_ = conn.SetWriteDeadline(time.Now().Add(opts.WriteTimeout))
			}
			return enc.Encode(rpcResponse{})
		case opNegotiateCodec:
			nopts := codec.Options{Kind: codec.Kind(req.CodecKind), Bits: int(req.CodecBits), TopK: req.CodecTopK}
			if err := nopts.Validate(); err != nil {
				resp.Err = err.Error() // app error: the coordinator falls back to raw
				break
			}
			wcEnc = codec.NewEncoder(nopts)
			wcEnc.SetTrace(tracer, tracer.Active)
			codec.PutParams(wcRef)
			wcRef = nil
		case opSetParams:
			p := req.Params
			if req.Blob != nil {
				dec, err := codec.DecodeParamsTraced(req.Blob, wcRef, tracer, tsp.Context())
				if err != nil {
					// Reference desync: drop our side so the coordinator's
					// absolute re-broadcast can resynchronise both.
					codec.PutParams(wcRef)
					if wcRef != nil {
						wireResets.Add(1)
					}
					wcRef = nil
					// The uplink residuals were built against the dead
					// reference chain; the coordinator's absolute re-broadcast
					// starts a new one.
					wcEnc.Reset()
					resp.Err = err.Error()
					break
				}
				if err := c.SetParams(dec); err != nil {
					resp.Err = err.Error()
				}
				codec.PutParams(wcRef)
				wcRef = dec // the model copied the values; keep the set as reference
				break
			}
			if err := c.SetParams(paramsFromWire(p)); err != nil {
				resp.Err = err.Error()
			}
		case opTrainLocal:
			loss, err := c.TrainLocal(req.Round)
			resp.Loss = loss
			if err != nil {
				resp.Err = err.Error()
			}
		case opEvalVal:
			resp.Correct, resp.Total = c.EvalVal()
		case opEvalTest:
			resp.Correct, resp.Total = c.EvalTest()
		case opGetParams:
			if wcEnc != nil {
				p := c.Params()
				blob, err := wcEnc.EncodeParams(nil, p, wcRef)
				if err != nil {
					resp.Err = err.Error()
					break
				}
				resp.Blob = blob
				if rec.Enabled() {
					rec.Count(codec.MetricBytesRaw, int64(p.Bytes()))
					rec.Count(codec.MetricBytesEncoded, int64(len(blob)))
				}
				break
			}
			resp.Params = paramsToWire(c.Params())
		case opLocalMeans:
			if !isMoment {
				resp.Err = "fed: client does not implement MomentClient"
				break
			}
			means, n, err := mc.LocalMeans()
			if err != nil {
				resp.Err = err.Error()
				break
			}
			resp.Means = vecsToWire(means)
			resp.N = n
		case opCentralMoments:
			if !isMoment {
				resp.Err = "fed: client does not implement MomentClient"
				break
			}
			moms, n, err := mc.CentralAroundGlobal(vecsFromWire(req.Means))
			if err != nil {
				resp.Err = err.Error()
				break
			}
			resp.Central = make([][]wireDense, len(moms))
			for l, layer := range moms {
				resp.Central[l] = vecsToWire(layer)
			}
			resp.N = n
		case opSetGlobalStats:
			if !isMoment {
				resp.Err = "fed: client does not implement MomentClient"
				break
			}
			central := make([][]*mat.Dense, len(req.Central))
			for l, layer := range req.Central {
				central[l] = vecsFromWire(layer)
			}
			mc.SetGlobalStats(vecsFromWire(req.Means), central)
		case opUploadAux:
			if !isAux {
				resp.Err = "fed: client does not implement AuxClient"
				break
			}
			resp.Params = paramsToWire(ac.UploadAux())
		case opDownloadAux:
			if !isAux {
				resp.Err = "fed: client does not implement AuxClient"
				break
			}
			if err := ac.DownloadAux(paramsFromWire(req.Params)); err != nil {
				resp.Err = err.Error()
			}
		default:
			resp.Err = fmt.Sprintf("fed: unknown op %q", req.Op)
		}
		handleSpan.End()
		tsp.End()
		if opts.WriteTimeout > 0 {
			_ = conn.SetWriteDeadline(time.Now().Add(opts.WriteTimeout))
		}
		tx0 := cc.tx.Load()
		if err := enc.Encode(resp); err != nil {
			return fmt.Errorf("fed: writing response: %w", err)
		}
		if rec.Enabled() {
			rec.Count("rpc/party/bytes_rx/"+opMetricSuffix(req.Op), cc.rx.Load()-rx0) //fedomdvet:ignore per-op series over the closed opMetricSuffix set; base key and suffixes are constants
			rec.Count("rpc/party/bytes_tx/"+opMetricSuffix(req.Op), cc.tx.Load()-tx0) //fedomdvet:ignore per-op series over the closed opMetricSuffix set; base key and suffixes are constants
		}
	}
}

// remoteClient proxies a connected party as a Client.
type remoteClient struct {
	name    string
	samples int
	enc     *gob.Encoder
	dec     *gob.Decoder
	conn    *countingConn
	rec     telemetry.Recorder
	tracer  *obs.Tracer
	opts    TransportOptions
	// codecOn is set once the party accepted an opNegotiateCodec request;
	// SetParams/GetParams then exchange codec blobs instead of raw gob.
	codecOn bool
	// downEnc encodes broadcasts (always the lossless Delta tier — the
	// global must arrive exactly). lastSent is the reference state the
	// party is known to hold: the last global it confirmed receiving. Any
	// failed exchange resets it to nil, forcing the next broadcast to be
	// an absolute blob, which re-synchronises both ends.
	downEnc  *codec.Encoder
	lastSent *nn.Params
}

// wireCodecNegotiated lets fed.Run's in-process codec layer skip clients
// whose connection already encodes payloads (see wireCodecClient).
func (r *remoteClient) wireCodecNegotiated() bool { return r.codecOn }

// call performs one request/response exchange with bounded retry: a
// transport-level failure triggers up to MaxRetries reconnect-and-reissue
// attempts under exponential backoff with deterministic jitter. Application
// errors, deadline expiries (handled by the failure policy, which knows the
// party is slow rather than unreachable), and Shutdown pass through
// unretried.
func (r *remoteClient) call(req rpcRequest) (rpcResponse, error) {
	return r.callBuild(func() (rpcRequest, error) { return req, nil })
}

// callBuild is call with the request built per attempt: a reconnect resets
// the codec reference state, so a retried SetParams must re-encode its blob
// against the fresh (nil) reference rather than reissue stale bytes.
func (r *remoteClient) callBuild(build func() (rpcRequest, error)) (rpcResponse, error) {
	req, err := build()
	if err != nil {
		return rpcResponse{}, err
	}
	resp, err := r.callOnce(req)
	if err == nil || r.opts.MaxRetries <= 0 || r.opts.Reconnect == nil || req.Op == opShutdown {
		return resp, err
	}
	for attempt := 1; attempt <= r.opts.MaxRetries; attempt++ {
		if !retryable(err) {
			return resp, err
		}
		time.Sleep(r.backoff(attempt))
		if rerr := r.reconnect(); rerr != nil {
			return resp, fmt.Errorf("fed: reconnect to %s: %w (after %v)", r.name, rerr, err)
		}
		r.rec.Count(MetricRPCRetries, 1)
		if req, err = build(); err != nil {
			return resp, err
		}
		resp, err = r.callOnce(req)
		if err == nil {
			return resp, nil
		}
	}
	return resp, err
}

// retryable reports whether err is a transport fault a fresh connection can
// fix. Application errors and timeouts are final.
func retryable(err error) bool {
	var ae appError
	if errors.As(err, &ae) {
		return false
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return false
	}
	return true
}

// backoff returns the pre-retry sleep for the given attempt: RetryBackoff
// doubled per attempt, capped at 5s, scaled by a deterministic jitter in
// [0.5, 1.5) derived from the party name, seed, and attempt number.
func (r *remoteClient) backoff(attempt int) time.Duration {
	base := r.opts.RetryBackoff
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	d := base << (attempt - 1)
	if d > 5*time.Second || d <= 0 {
		d = 5 * time.Second
	}
	h := fnv.New64a()
	h.Write([]byte(r.name))
	mix := h.Sum64() ^ uint64(r.opts.RetrySeed) ^ uint64(attempt)*0x9e3779b97f4a7c15
	frac := 0.5 + float64(mix%1024)/1024.0
	return time.Duration(float64(d) * frac)
}

// reconnect replaces the broken connection with a fresh one from the
// Reconnect hook and re-runs the hello handshake, verifying the same party
// answered.
func (r *remoteClient) reconnect() error {
	_ = r.conn.Close()
	conn, err := r.opts.Reconnect(r.name)
	if err != nil {
		return err
	}
	cc := &countingConn{Conn: conn}
	enc := gob.NewEncoder(cc)
	dec := gob.NewDecoder(cc)
	if r.opts.ReadTimeout > 0 {
		_ = conn.SetReadDeadline(time.Now().Add(r.opts.ReadTimeout))
	}
	var h hello
	if err := dec.Decode(&h); err != nil {
		conn.Close()
		return fmt.Errorf("handshake: %w", err)
	}
	if h.Name != r.name {
		conn.Close()
		return fmt.Errorf("expected party %s, got %s", r.name, h.Name)
	}
	r.conn, r.enc, r.dec = cc, enc, dec
	// The party restarted its serve loop, so its codec reference and
	// error-feedback residuals are gone. Renegotiate and start from an
	// absolute broadcast.
	if r.lastSent != nil {
		wireResets.Add(1)
	}
	r.lastSent = nil
	r.downEnc.Reset() // residuals belong to the dead reference chain (nil-safe pre-negotiation)
	if r.codecOn {
		if !wireSupported(h.Codecs, codec.WireV1) {
			r.conn.Close()
			return fmt.Errorf("party %s no longer advertises wire v1", r.name)
		}
		if _, err := r.callOnce(negotiateRequest(r.opts.Codec)); err != nil {
			r.conn.Close()
			return fmt.Errorf("codec renegotiation with %s: %w", r.name, err)
		}
	}
	return nil
}

// negotiateRequest packs a codec choice into an opNegotiateCodec request.
func negotiateRequest(o codec.Options) rpcRequest {
	return rpcRequest{Op: opNegotiateCodec,
		CodecKind: uint8(o.Kind), CodecBits: uint8(o.Bits), CodecTopK: o.TopK}
}

// wireSupported reports whether the advertised protocol versions include v.
func wireSupported(versions []uint8, v uint8) bool {
	for _, got := range versions {
		if got == v {
			return true
		}
	}
	return false
}

// callOnce performs one request/response exchange, applying the configured
// per-request deadlines and recording latency and payload sizes per op. A
// deadline expiry surfaces as an error naming the party (via the "to/from
// %s" wrapping) that satisfies net.Error with Timeout() == true.
func (r *remoteClient) callOnce(req rpcRequest) (rpcResponse, error) {
	// StartSpan is inert when telemetry is off, so start unconditionally and
	// retire the span on every exit: End on success, Cancel on failure — a
	// failed exchange is not a latency observation.
	sp := telemetry.StartSpan(r.rec, "rpc/coord/latency_seconds/"+opMetricSuffix(req.Op)) //fedomdvet:ignore per-op series over the closed opMetricSuffix set; base key and suffixes are constants
	var tx0, rx0 int64
	if r.rec.Enabled() {
		tx0, rx0 = r.conn.tx.Load(), r.conn.rx.Load()
	}
	// The rpc span parents at the tracer's active context (the current round
	// span) and its identity rides in the request frame, so the party's
	// handling span becomes its child across the process boundary.
	osp := r.tracer.Start(r.tracer.Active(), obs.SpanRPC)
	osp.SetAttr(obs.AttrOp, opMetricSuffix(req.Op))
	osp.SetAttr(obs.AttrParty, r.name)
	defer osp.End()
	if ctx := osp.Context(); ctx.Valid() {
		req.TraceID, req.SpanID = uint64(ctx.Trace), uint64(ctx.Span)
	}
	if r.opts.WriteTimeout > 0 {
		_ = r.conn.SetWriteDeadline(time.Now().Add(r.opts.WriteTimeout))
	}
	if err := r.enc.Encode(req); err != nil {
		sp.Cancel()
		return rpcResponse{}, fmt.Errorf("fed: rpc %s to %s: %w", req.Op, r.name, err)
	}
	if r.opts.ReadTimeout > 0 {
		_ = r.conn.SetReadDeadline(time.Now().Add(r.opts.ReadTimeout))
	}
	var resp rpcResponse
	if err := r.dec.Decode(&resp); err != nil {
		sp.Cancel()
		return rpcResponse{}, fmt.Errorf("fed: rpc %s reply from %s: %w", req.Op, r.name, err)
	}
	sp.End()
	if r.rec.Enabled() {
		r.rec.Count("rpc/coord/bytes_tx/"+opMetricSuffix(req.Op), r.conn.tx.Load()-tx0) //fedomdvet:ignore per-op series over the closed opMetricSuffix set; base key and suffixes are constants
		r.rec.Count("rpc/coord/bytes_rx/"+opMetricSuffix(req.Op), r.conn.rx.Load()-rx0) //fedomdvet:ignore per-op series over the closed opMetricSuffix set; base key and suffixes are constants
	}
	if resp.Err != "" {
		return resp, appError(resp.Err)
	}
	return resp, nil
}

func (r *remoteClient) Name() string    { return r.name }
func (r *remoteClient) NumSamples() int { return r.samples }

func (r *remoteClient) Params() *nn.Params {
	resp, err := r.call(rpcRequest{Op: opGetParams})
	if err != nil {
		// Params() cannot report errors; an empty set will fail loudly in
		// aggregation with a shape mismatch.
		return nn.NewParams()
	}
	if resp.Blob != nil {
		p, derr := codec.DecodeParamsTraced(resp.Blob, r.lastSent, r.tracer, r.tracer.Active())
		if derr != nil {
			if r.lastSent != nil {
				wireResets.Add(1)
			}
			r.lastSent = nil // desync: force an absolute re-broadcast
			r.downEnc.Reset()
			return nn.NewParams()
		}
		if r.rec.Enabled() {
			r.rec.Count(codec.MetricBytesRaw, int64(p.Bytes()))
			r.rec.Count(codec.MetricBytesEncoded, int64(len(resp.Blob)))
		}
		return p
	}
	return paramsFromWire(resp.Params)
}

func (r *remoteClient) SetParams(global *nn.Params) error {
	if !r.codecOn {
		_, err := r.call(rpcRequest{Op: opSetParams, Params: paramsToWire(global)})
		return err
	}
	_, err := r.callBuild(func() (rpcRequest, error) {
		blob, eerr := r.downEnc.EncodeParams(nil, global, r.lastSent)
		if eerr != nil {
			return rpcRequest{}, fmt.Errorf("fed: codec encode for %s: %w", r.name, eerr)
		}
		if r.rec.Enabled() {
			r.rec.Count(codec.MetricBytesRawDown, int64(global.Bytes()))
			r.rec.Count(codec.MetricBytesEncodedDown, int64(len(blob)))
		}
		return rpcRequest{Op: opSetParams, Blob: blob}, nil
	})
	if err != nil {
		// The party may or may not have applied the blob; assume nothing
		// and resynchronise with an absolute broadcast next time.
		if r.lastSent != nil {
			wireResets.Add(1)
		}
		r.lastSent = nil
		r.downEnc.Reset()
		return err
	}
	r.lastSent = global
	return nil
}

func (r *remoteClient) TrainLocal(round int) (float64, error) {
	resp, err := r.call(rpcRequest{Op: opTrainLocal, Round: round})
	return resp.Loss, err
}

func (r *remoteClient) EvalVal() (int, int) {
	resp, err := r.call(rpcRequest{Op: opEvalVal})
	if err != nil {
		return 0, 0
	}
	return resp.Correct, resp.Total
}

func (r *remoteClient) EvalTest() (int, int) {
	resp, err := r.call(rpcRequest{Op: opEvalTest})
	if err != nil {
		return 0, 0
	}
	return resp.Correct, resp.Total
}

func (r *remoteClient) shutdown() {
	_, _ = r.call(rpcRequest{Op: opShutdown})
	_ = r.conn.Close()
}

// remoteMomentClient adds the MomentClient surface.
type remoteMomentClient struct{ remoteClient }

func (r *remoteMomentClient) LocalMeans() ([]*mat.Dense, int, error) {
	resp, err := r.call(rpcRequest{Op: opLocalMeans})
	if err != nil {
		return nil, 0, err
	}
	return vecsFromWire(resp.Means), resp.N, nil
}

func (r *remoteMomentClient) CentralAroundGlobal(globalMeans []*mat.Dense) ([][]*mat.Dense, int, error) {
	resp, err := r.call(rpcRequest{Op: opCentralMoments, Means: vecsToWire(globalMeans)})
	if err != nil {
		return nil, 0, err
	}
	out := make([][]*mat.Dense, len(resp.Central))
	for l, layer := range resp.Central {
		out[l] = vecsFromWire(layer)
	}
	return out, resp.N, nil
}

func (r *remoteMomentClient) SetGlobalStats(means []*mat.Dense, central [][]*mat.Dense) {
	wire := make([][]wireDense, len(central))
	for l, layer := range central {
		wire[l] = vecsToWire(layer)
	}
	_, _ = r.call(rpcRequest{Op: opSetGlobalStats, Means: vecsToWire(means), Central: wire})
}

// remoteAuxClient adds the AuxClient surface.
type remoteAuxClient struct{ remoteClient }

func (r *remoteAuxClient) UploadAux() *nn.Params {
	resp, err := r.call(rpcRequest{Op: opUploadAux})
	if err != nil {
		return nil
	}
	return paramsFromWire(resp.Params)
}

func (r *remoteAuxClient) DownloadAux(global *nn.Params) error {
	_, err := r.call(rpcRequest{Op: opDownloadAux, Params: paramsToWire(global)})
	return err
}

// AcceptClients waits for n parties to connect and complete their handshake,
// returning proxy Clients in connection order.
func AcceptClients(ln net.Listener, n int) ([]Client, error) {
	return AcceptClientsOpts(ln, n, TransportOptions{})
}

// AcceptClientsOpts is AcceptClients with explicit transport options: the
// returned proxies apply the per-request deadlines and record RPC telemetry.
func AcceptClientsOpts(ln net.Listener, n int, opts TransportOptions) ([]Client, error) {
	clients := make([]Client, 0, n)
	for len(clients) < n {
		conn, err := ln.Accept()
		if err != nil {
			return nil, fmt.Errorf("fed: accept: %w", err)
		}
		cc := &countingConn{Conn: conn}
		enc := gob.NewEncoder(cc)
		dec := gob.NewDecoder(cc)
		var h hello
		if err := dec.Decode(&h); err != nil {
			conn.Close()
			return nil, fmt.Errorf("fed: handshake: %w", err)
		}
		base := remoteClient{name: h.Name, samples: h.NumSamples, enc: enc, dec: dec,
			conn: cc, rec: telemetry.Or(opts.Recorder), tracer: opts.Tracer, opts: opts}
		if opts.Codec.Enabled() && wireSupported(h.Codecs, codec.WireV1) {
			if _, err := base.callOnce(negotiateRequest(opts.Codec)); err != nil {
				var ae appError
				if !errors.As(err, &ae) {
					conn.Close()
					return nil, fmt.Errorf("fed: codec negotiation with %s: %w", h.Name, err)
				}
				// The party understood the request and refused the codec
				// (e.g. an options set its build rejects): stay on v0 raw.
			} else {
				base.codecOn = true
				base.downEnc = codec.NewEncoder(codec.Options{Kind: codec.Delta})
				base.downEnc.SetTrace(opts.Tracer, opts.Tracer.Active)
			}
		}
		switch {
		case h.Moment:
			clients = append(clients, &remoteMomentClient{base})
		case h.Aux:
			clients = append(clients, &remoteAuxClient{base})
		default:
			rc := base
			clients = append(clients, &rc)
		}
	}
	return clients, nil
}

// RunDistributed accepts n parties on ln and drives the full federated
// protocol over the network, reusing Run's round logic. Parties are shut
// down cleanly when the run finishes. cfg.Recorder, when set, also receives
// the transport's RPC metrics.
func RunDistributed(cfg Config, ln net.Listener, n int) (*Result, error) {
	return RunDistributedOpts(cfg, ln, n, TransportOptions{Recorder: cfg.Recorder, Codec: cfg.Codec, Tracer: cfg.Tracer})
}

// RunDistributedOpts is RunDistributed with explicit transport options
// (per-request deadlines, a dedicated transport Recorder).
func RunDistributedOpts(cfg Config, ln net.Listener, n int, opts TransportOptions) (*Result, error) {
	if n <= 0 {
		return nil, fmt.Errorf("fed: RunDistributed needs a positive party count, got %d", n)
	}
	if !opts.Codec.Enabled() {
		// A codec chosen on the run config applies to the transport: the
		// negotiated wire layer subsumes the in-process simulation (Run
		// skips proxies that report wireCodecNegotiated).
		opts.Codec = cfg.Codec
	}
	if opts.Tracer == nil {
		opts.Tracer = cfg.Tracer
	}
	clients, err := AcceptClientsOpts(ln, n, opts)
	if err != nil {
		return nil, err
	}
	defer func() {
		for _, c := range clients {
			switch rc := c.(type) {
			case *remoteClient:
				rc.shutdown()
			case *remoteMomentClient:
				rc.shutdown()
			case *remoteAuxClient:
				rc.shutdown()
			}
		}
	}()
	return Run(cfg, clients)
}
