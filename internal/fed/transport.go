package fed

// transport.go implements a distributed deployment of the same federated
// protocol Run drives in-process: the server listens on a net.Listener, each
// party connects from its own process (or goroutine) and serves its local
// client over a length-delimited gob RPC stream, and the coordinator drives
// the connections through proxy Clients so Run's round logic — FedAvg,
// moment exchange, aux state, accounting — is reused verbatim.
//
// One request is in flight per connection at a time, matching Run's
// guarantee that a client is never called concurrently with itself.

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"time"

	"fedomd/internal/mat"
	"fedomd/internal/nn"
)

// wireDense is the gob form of a dense matrix.
type wireDense struct {
	Rows, Cols int
	Data       []float64
}

func toWire(m *mat.Dense) wireDense {
	if m == nil {
		return wireDense{}
	}
	return wireDense{Rows: m.Rows(), Cols: m.Cols(), Data: append([]float64(nil), m.Data()...)}
}

func fromWire(w wireDense) *mat.Dense {
	if w.Rows == 0 && w.Cols == 0 {
		return mat.New(0, 0)
	}
	return mat.NewFromData(w.Rows, w.Cols, append([]float64(nil), w.Data...))
}

// wireParams is the gob form of a parameter set.
type wireParams struct {
	Names []string
	Mats  []wireDense
}

func paramsToWire(p *nn.Params) *wireParams {
	if p == nil {
		return nil
	}
	w := &wireParams{Names: p.Names()}
	for i := 0; i < p.Len(); i++ {
		w.Mats = append(w.Mats, toWire(p.At(i)))
	}
	return w
}

func paramsFromWire(w *wireParams) *nn.Params {
	if w == nil {
		return nil
	}
	p := nn.NewParams()
	for i, name := range w.Names {
		p.Add(name, fromWire(w.Mats[i]))
	}
	return p
}

func vecsToWire(vs []*mat.Dense) []wireDense {
	out := make([]wireDense, len(vs))
	for i, v := range vs {
		out[i] = toWire(v)
	}
	return out
}

func vecsFromWire(ws []wireDense) []*mat.Dense {
	out := make([]*mat.Dense, len(ws))
	for i, w := range ws {
		out[i] = fromWire(w)
	}
	return out
}

// rpc operation codes.
const (
	opSetParams      = "SetParams"
	opTrainLocal     = "TrainLocal"
	opEvalVal        = "EvalVal"
	opEvalTest       = "EvalTest"
	opGetParams      = "GetParams"
	opLocalMeans     = "LocalMeans"
	opCentralMoments = "CentralMoments"
	opSetGlobalStats = "SetGlobalStats"
	opUploadAux      = "UploadAux"
	opDownloadAux    = "DownloadAux"
	opShutdown       = "Shutdown"
)

// hello is the first message a party sends after connecting.
type hello struct {
	Name       string
	NumSamples int
	Moment     bool // implements MomentClient
	Aux        bool // implements AuxClient
}

// rpcRequest is a coordinator→party message.
type rpcRequest struct {
	Op      string
	Round   int
	Params  *wireParams
	Means   []wireDense
	Central [][]wireDense
}

// rpcResponse is a party→coordinator reply.
type rpcResponse struct {
	Err            string
	Loss           float64
	Correct, Total int
	Params         *wireParams
	Means          []wireDense
	Central        [][]wireDense
	N              int
}

// ServeClient connects to the coordinator at addr and serves the local
// client until the coordinator sends Shutdown or the connection closes.
// It returns nil on a clean shutdown.
func ServeClient(addr string, c Client) error {
	conn, err := net.DialTimeout("tcp", addr, 30*time.Second)
	if err != nil {
		return fmt.Errorf("fed: dial coordinator: %w", err)
	}
	defer conn.Close()
	return ServeClientConn(conn, c)
}

// ServeClientConn serves the client over an established connection (exported
// so tests and in-process demos can use net.Pipe or loopback listeners).
func ServeClientConn(conn net.Conn, c Client) error {
	enc := gob.NewEncoder(conn)
	dec := gob.NewDecoder(conn)
	mc, isMoment := c.(MomentClient)
	ac, isAux := c.(AuxClient)
	if err := enc.Encode(hello{Name: c.Name(), NumSamples: c.NumSamples(), Moment: isMoment, Aux: isAux}); err != nil {
		return fmt.Errorf("fed: handshake: %w", err)
	}
	for {
		var req rpcRequest
		if err := dec.Decode(&req); err != nil {
			return fmt.Errorf("fed: reading request: %w", err)
		}
		var resp rpcResponse
		switch req.Op {
		case opShutdown:
			return enc.Encode(rpcResponse{})
		case opSetParams:
			if err := c.SetParams(paramsFromWire(req.Params)); err != nil {
				resp.Err = err.Error()
			}
		case opTrainLocal:
			loss, err := c.TrainLocal(req.Round)
			resp.Loss = loss
			if err != nil {
				resp.Err = err.Error()
			}
		case opEvalVal:
			resp.Correct, resp.Total = c.EvalVal()
		case opEvalTest:
			resp.Correct, resp.Total = c.EvalTest()
		case opGetParams:
			resp.Params = paramsToWire(c.Params())
		case opLocalMeans:
			if !isMoment {
				resp.Err = "fed: client does not implement MomentClient"
				break
			}
			means, n, err := mc.LocalMeans()
			if err != nil {
				resp.Err = err.Error()
				break
			}
			resp.Means = vecsToWire(means)
			resp.N = n
		case opCentralMoments:
			if !isMoment {
				resp.Err = "fed: client does not implement MomentClient"
				break
			}
			moms, n, err := mc.CentralAroundGlobal(vecsFromWire(req.Means))
			if err != nil {
				resp.Err = err.Error()
				break
			}
			resp.Central = make([][]wireDense, len(moms))
			for l, layer := range moms {
				resp.Central[l] = vecsToWire(layer)
			}
			resp.N = n
		case opSetGlobalStats:
			if !isMoment {
				resp.Err = "fed: client does not implement MomentClient"
				break
			}
			central := make([][]*mat.Dense, len(req.Central))
			for l, layer := range req.Central {
				central[l] = vecsFromWire(layer)
			}
			mc.SetGlobalStats(vecsFromWire(req.Means), central)
		case opUploadAux:
			if !isAux {
				resp.Err = "fed: client does not implement AuxClient"
				break
			}
			resp.Params = paramsToWire(ac.UploadAux())
		case opDownloadAux:
			if !isAux {
				resp.Err = "fed: client does not implement AuxClient"
				break
			}
			if err := ac.DownloadAux(paramsFromWire(req.Params)); err != nil {
				resp.Err = err.Error()
			}
		default:
			resp.Err = fmt.Sprintf("fed: unknown op %q", req.Op)
		}
		if err := enc.Encode(resp); err != nil {
			return fmt.Errorf("fed: writing response: %w", err)
		}
	}
}

// remoteClient proxies a connected party as a Client.
type remoteClient struct {
	name    string
	samples int
	enc     *gob.Encoder
	dec     *gob.Decoder
	conn    net.Conn
}

func (r *remoteClient) call(req rpcRequest) (rpcResponse, error) {
	if err := r.enc.Encode(req); err != nil {
		return rpcResponse{}, fmt.Errorf("fed: rpc %s to %s: %w", req.Op, r.name, err)
	}
	var resp rpcResponse
	if err := r.dec.Decode(&resp); err != nil {
		return rpcResponse{}, fmt.Errorf("fed: rpc %s reply from %s: %w", req.Op, r.name, err)
	}
	if resp.Err != "" {
		return resp, errors.New(resp.Err)
	}
	return resp, nil
}

func (r *remoteClient) Name() string    { return r.name }
func (r *remoteClient) NumSamples() int { return r.samples }

func (r *remoteClient) Params() *nn.Params {
	resp, err := r.call(rpcRequest{Op: opGetParams})
	if err != nil {
		// Params() cannot report errors; an empty set will fail loudly in
		// aggregation with a shape mismatch.
		return nn.NewParams()
	}
	return paramsFromWire(resp.Params)
}

func (r *remoteClient) SetParams(global *nn.Params) error {
	_, err := r.call(rpcRequest{Op: opSetParams, Params: paramsToWire(global)})
	return err
}

func (r *remoteClient) TrainLocal(round int) (float64, error) {
	resp, err := r.call(rpcRequest{Op: opTrainLocal, Round: round})
	return resp.Loss, err
}

func (r *remoteClient) EvalVal() (int, int) {
	resp, err := r.call(rpcRequest{Op: opEvalVal})
	if err != nil {
		return 0, 0
	}
	return resp.Correct, resp.Total
}

func (r *remoteClient) EvalTest() (int, int) {
	resp, err := r.call(rpcRequest{Op: opEvalTest})
	if err != nil {
		return 0, 0
	}
	return resp.Correct, resp.Total
}

func (r *remoteClient) shutdown() {
	_, _ = r.call(rpcRequest{Op: opShutdown})
	_ = r.conn.Close()
}

// remoteMomentClient adds the MomentClient surface.
type remoteMomentClient struct{ remoteClient }

func (r *remoteMomentClient) LocalMeans() ([]*mat.Dense, int, error) {
	resp, err := r.call(rpcRequest{Op: opLocalMeans})
	if err != nil {
		return nil, 0, err
	}
	return vecsFromWire(resp.Means), resp.N, nil
}

func (r *remoteMomentClient) CentralAroundGlobal(globalMeans []*mat.Dense) ([][]*mat.Dense, int, error) {
	resp, err := r.call(rpcRequest{Op: opCentralMoments, Means: vecsToWire(globalMeans)})
	if err != nil {
		return nil, 0, err
	}
	out := make([][]*mat.Dense, len(resp.Central))
	for l, layer := range resp.Central {
		out[l] = vecsFromWire(layer)
	}
	return out, resp.N, nil
}

func (r *remoteMomentClient) SetGlobalStats(means []*mat.Dense, central [][]*mat.Dense) {
	wire := make([][]wireDense, len(central))
	for l, layer := range central {
		wire[l] = vecsToWire(layer)
	}
	_, _ = r.call(rpcRequest{Op: opSetGlobalStats, Means: vecsToWire(means), Central: wire})
}

// remoteAuxClient adds the AuxClient surface.
type remoteAuxClient struct{ remoteClient }

func (r *remoteAuxClient) UploadAux() *nn.Params {
	resp, err := r.call(rpcRequest{Op: opUploadAux})
	if err != nil {
		return nil
	}
	return paramsFromWire(resp.Params)
}

func (r *remoteAuxClient) DownloadAux(global *nn.Params) error {
	_, err := r.call(rpcRequest{Op: opDownloadAux, Params: paramsToWire(global)})
	return err
}

// AcceptClients waits for n parties to connect and complete their handshake,
// returning proxy Clients in connection order.
func AcceptClients(ln net.Listener, n int) ([]Client, error) {
	clients := make([]Client, 0, n)
	for len(clients) < n {
		conn, err := ln.Accept()
		if err != nil {
			return nil, fmt.Errorf("fed: accept: %w", err)
		}
		enc := gob.NewEncoder(conn)
		dec := gob.NewDecoder(conn)
		var h hello
		if err := dec.Decode(&h); err != nil {
			conn.Close()
			return nil, fmt.Errorf("fed: handshake: %w", err)
		}
		base := remoteClient{name: h.Name, samples: h.NumSamples, enc: enc, dec: dec, conn: conn}
		switch {
		case h.Moment:
			clients = append(clients, &remoteMomentClient{base})
		case h.Aux:
			clients = append(clients, &remoteAuxClient{base})
		default:
			rc := base
			clients = append(clients, &rc)
		}
	}
	return clients, nil
}

// RunDistributed accepts n parties on ln and drives the full federated
// protocol over the network, reusing Run's round logic. Parties are shut
// down cleanly when the run finishes.
func RunDistributed(cfg Config, ln net.Listener, n int) (*Result, error) {
	if n <= 0 {
		return nil, fmt.Errorf("fed: RunDistributed needs a positive party count, got %d", n)
	}
	clients, err := AcceptClients(ln, n)
	if err != nil {
		return nil, err
	}
	defer func() {
		for _, c := range clients {
			switch rc := c.(type) {
			case *remoteClient:
				rc.shutdown()
			case *remoteMomentClient:
				rc.shutdown()
			case *remoteAuxClient:
				rc.shutdown()
			}
		}
	}()
	return Run(cfg, clients)
}
