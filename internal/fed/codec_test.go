package fed

import (
	"encoding/gob"
	"fmt"
	"math"
	"net"
	"testing"
	"time"

	"fedomd/internal/codec"
	"fedomd/internal/mat"
	"fedomd/internal/nn"
	"fedomd/internal/telemetry"
)

// newWideFakeClient is a fakeClient whose parameter tensor is wide enough
// for codec framing overhead to amortize (1×n instead of 1×1).
func newWideFakeClient(name string, samples int, initVal float64, n int) *fakeClient {
	f := newFakeClient(name, samples, initVal)
	p := nn.NewParams()
	m := mat.New(1, n)
	for j := 0; j < n; j++ {
		m.Set(0, j, initVal+float64(j)/float64(n))
	}
	p.Add("w", m)
	f.params = p
	return f
}

// The lossless Delta tier must not change the computation at all: same
// history (except byte columns), bit-identical final parameters — while
// moving fewer bytes.
func TestCodecRunDeltaParity(t *testing.T) {
	mk := func() []Client {
		a := newWideFakeClient("a", 3, 0, 64)
		a.trainVal = 1
		b := newWideFakeClient("b", 1, 0, 64)
		b.trainVal = 5
		return []Client{a, b}
	}
	raw, err := Run(Config{Rounds: 4}, mk())
	if err != nil {
		t.Fatal(err)
	}
	delta, err := Run(Config{Rounds: 4, Codec: codec.Options{Kind: codec.Delta}}, mk())
	if err != nil {
		t.Fatal(err)
	}
	if len(raw.History) != len(delta.History) {
		t.Fatalf("history length %d vs %d", len(raw.History), len(delta.History))
	}
	for i := range raw.History {
		r, d := raw.History[i], delta.History[i]
		r.BytesUp, r.BytesDown, d.BytesUp, d.BytesDown = 0, 0, 0, 0
		r.Start, r.End, d.Start, d.End = time.Time{}, time.Time{}, time.Time{}, time.Time{}
		if r != d {
			t.Fatalf("round %d stats diverged: %+v vs %+v", i, r, d)
		}
	}
	if !raw.FinalParams.Get("w").Equal(delta.FinalParams.Get("w")) {
		t.Fatal("delta codec changed the final parameters")
	}
	if raw.BestValAcc != delta.BestValAcc || raw.TestAtBestVal != delta.TestAtBestVal {
		t.Fatal("delta codec changed the accuracy outcome")
	}
	if delta.TotalBytesUp >= raw.TotalBytesUp || delta.TotalBytesDown >= raw.TotalBytesDown {
		t.Fatalf("delta codec did not shrink traffic: up %d vs %d, down %d vs %d",
			delta.TotalBytesUp, raw.TotalBytesUp, delta.TotalBytesDown, raw.TotalBytesDown)
	}
}

// The codec byte counters must reconcile with the run's own accounting:
// encoded < raw, and the history's byte columns carry the encoded sizes.
func TestCodecRunCounters(t *testing.T) {
	agg := telemetry.NewAggregator()
	clients := []Client{
		newWideFakeClient("a", 2, 0, 256),
		newWideFakeClient("b", 1, 1, 256),
	}
	res, err := Run(Config{Rounds: 3, Recorder: agg,
		Codec: codec.Options{Kind: codec.Quant, Bits: 8}}, clients)
	if err != nil {
		t.Fatal(err)
	}
	rawB, encB := agg.Counter(codec.MetricBytesRaw), agg.Counter(codec.MetricBytesEncoded)
	if rawB == 0 || encB == 0 {
		t.Fatalf("codec byte counters missing: raw=%d encoded=%d", rawB, encB)
	}
	if encB >= rawB {
		t.Fatalf("8-bit quantization did not compress uploads: %d encoded vs %d raw", encB, rawB)
	}
	if agg.Counter(codec.MetricBytesRawDown) == 0 || agg.Counter(codec.MetricBytesEncodedDown) == 0 {
		t.Fatal("downlink byte counters missing")
	}
	if agg.Counter(codec.MetricEncodeNs) == 0 || agg.Counter(codec.MetricDecodeNs) == 0 {
		t.Fatal("codec timing counters missing")
	}
	// The history's byte columns carry the encoded sizes, so the uplink total
	// must reconcile exactly with the uplink counter.
	if res.TotalBytesUp != encB {
		t.Fatalf("history BytesUp %d != encoded upload counter %d", res.TotalBytesUp, encB)
	}
	if res.TotalBytesDown != agg.Counter(codec.MetricBytesEncodedDown) {
		t.Fatalf("history BytesDown %d != encoded downlink counter %d",
			res.TotalBytesDown, agg.Counter(codec.MetricBytesEncodedDown))
	}
}

// A NaN-poisoned upload must still reach the server's non-finite screen
// through a lossy codec (the encoder escapes non-finite tensors to absolute
// frames rather than quantizing them away or poisoning its residual).
func TestCodecNaNUploadStillDropped(t *testing.T) {
	a := newWideFakeClient("a", 1, 0, 32)
	a.trainVal = 1
	b := newWideFakeClient("b", 1, 0, 32)
	b.trainVal = math.NaN()
	res, err := Run(Config{Rounds: 2, Policy: DropRound,
		Codec: codec.Options{Kind: codec.Quant, Bits: 8}}, []Client{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if res.ClientFailures["b"] == 0 {
		t.Fatal("NaN upload was not attributed to the poisoned client")
	}
	if v := res.FinalParams.Get("w").At(0, 0); math.IsNaN(v) {
		t.Fatal("NaN leaked into the aggregate")
	}
}

// Distributed run with a negotiated delta codec: bit-identical outcome to
// the raw-transport run, with measurably fewer bytes on the sockets.
func TestDistributedCodecDeltaParity(t *testing.T) {
	mk := func() []Client {
		a := newWideFakeClient("a", 3, 0, 128)
		a.trainVal = 1
		b := newWideFakeClient("b", 1, 0, 128)
		b.trainVal = 5
		return []Client{a, b}
	}
	rawAgg := telemetry.NewAggregator()
	raw, err := startServer(t, Config{Rounds: 3, Sequential: true, Recorder: rawAgg}, mk())
	if err != nil {
		t.Fatal(err)
	}
	codAgg := telemetry.NewAggregator()
	cod, err := startServer(t, Config{Rounds: 3, Sequential: true, Recorder: codAgg,
		Codec: codec.Options{Kind: codec.Delta}}, mk())
	if err != nil {
		t.Fatal(err)
	}
	if !raw.FinalParams.Get("w").Equal(cod.FinalParams.Get("w")) {
		t.Fatal("negotiated delta codec changed the distributed aggregate")
	}
	if raw.History[2].TestAcc != cod.History[2].TestAcc {
		t.Fatal("negotiated delta codec changed the accuracy trajectory")
	}
	if codAgg.Counter(codec.MetricBytesEncoded) == 0 {
		t.Fatal("transport codec counters missing: negotiation did not happen")
	}
	// The payload ops must be lighter on the wire than the raw run's.
	for _, key := range []string{"rpc/coord/bytes_tx/set_params", "rpc/coord/bytes_rx/get_params"} {
		if c, r := codAgg.Counter(key), rawAgg.Counter(key); c >= r {
			t.Errorf("%s: codec run moved %d bytes, raw run %d", key, c, r)
		}
	}
}

// Distributed run with 8-bit quantization: completes, and the aggregate
// lands within the quantization step of the raw run (single tensor, so the
// bound is loose but meaningful for these fakes).
func TestDistributedCodecQuant(t *testing.T) {
	mk := func() []Client {
		a := newWideFakeClient("a", 1, 0, 64)
		a.trainVal = 1
		b := newWideFakeClient("b", 1, 0, 64)
		b.trainVal = 2
		return []Client{a, b}
	}
	raw, err := startServer(t, Config{Rounds: 3, Sequential: true}, mk())
	if err != nil {
		t.Fatal(err)
	}
	q, err := startServer(t, Config{Rounds: 3, Sequential: true,
		Codec: codec.Options{Kind: codec.Quant, Bits: 8}}, mk())
	if err != nil {
		t.Fatal(err)
	}
	rw, qw := raw.FinalParams.Get("w"), q.FinalParams.Get("w")
	for j := 0; j < rw.Cols(); j++ {
		if d := math.Abs(rw.At(0, j) - qw.At(0, j)); d > 0.05 {
			t.Fatalf("quantized distributed aggregate drifted %g at [%d]", d, j)
		}
	}
}

// oldServeClient is a v0 binary in effigy: it speaks the pre-codec wire
// format — a hello without the Codecs field, requests without Blob — so it
// never advertises and must be left on raw gob by the negotiation.
func oldServeClient(conn net.Conn, c Client) error {
	type oldHello struct {
		Name       string
		NumSamples int
		Moment     bool
		Aux        bool
	}
	type oldRequest struct {
		Op     string
		Round  int
		Params *wireParams
	}
	type oldResponse struct {
		Err            string
		Loss           float64
		Correct, Total int
		Params         *wireParams
	}
	enc := gob.NewEncoder(conn)
	dec := gob.NewDecoder(conn)
	if err := enc.Encode(oldHello{Name: c.Name(), NumSamples: c.NumSamples()}); err != nil {
		return err
	}
	for {
		var req oldRequest
		if err := dec.Decode(&req); err != nil {
			return err
		}
		var resp oldResponse
		switch req.Op {
		case opShutdown:
			return enc.Encode(oldResponse{})
		case opSetParams:
			if err := c.SetParams(paramsFromWire(req.Params)); err != nil {
				resp.Err = err.Error()
			}
		case opTrainLocal:
			loss, err := c.TrainLocal(req.Round)
			resp.Loss = loss
			if err != nil {
				resp.Err = err.Error()
			}
		case opEvalVal:
			resp.Correct, resp.Total = c.EvalVal()
		case opEvalTest:
			resp.Correct, resp.Total = c.EvalTest()
		case opGetParams:
			resp.Params = paramsToWire(c.Params())
		default:
			resp.Err = fmt.Sprintf("old peer: unknown op %q", req.Op)
		}
		if err := enc.Encode(resp); err != nil {
			return err
		}
	}
}

// A mixed fleet — one current party, one v0 peer — must complete a
// codec-enabled run: the new connection negotiates, the old one gracefully
// stays raw, and the result matches the all-raw run exactly (Delta tier).
func TestDistributedCodecOldPeerFallback(t *testing.T) {
	run := func(cfg Config) *Result {
		t.Helper()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer ln.Close()
		a := newWideFakeClient("a", 3, 0, 32)
		a.trainVal = 1
		b := newWideFakeClient("b", 1, 0, 32)
		b.trainVal = 5
		newErr := make(chan error, 1)
		oldErr := make(chan error, 1)
		go func() { newErr <- ServeClient(ln.Addr().String(), a) }()
		go func() {
			conn, err := net.Dial("tcp", ln.Addr().String())
			if err != nil {
				oldErr <- err
				return
			}
			defer conn.Close()
			oldErr <- oldServeClient(conn, b)
		}()
		res, err := RunDistributed(cfg, ln, 2)
		if err != nil {
			t.Fatal(err)
		}
		if err := <-newErr; err != nil {
			t.Fatalf("current party serve error: %v", err)
		}
		if err := <-oldErr; err != nil {
			t.Fatalf("v0 party serve error: %v", err)
		}
		return res
	}
	raw := run(Config{Rounds: 3, Sequential: true})
	mixed := run(Config{Rounds: 3, Sequential: true, Codec: codec.Options{Kind: codec.Delta}})
	if !raw.FinalParams.Get("w").Equal(mixed.FinalParams.Get("w")) {
		t.Fatal("mixed-fleet codec run diverged from the raw run")
	}
}
