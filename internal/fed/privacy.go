package fed

// privacy.go adds an optional differential-privacy layer to FedOMD's
// statistics exchange — the natural hardening of the paper's privacy
// motivation: even moment vectors leak something about local features, so a
// party can clip and noise every uploaded vector with the Gaussian
// mechanism before it leaves the process. Weights are untouched (secure
// aggregation of weights is orthogonal and out of scope).

import (
	"fmt"
	"math"
	"math/rand"

	"fedomd/internal/mat"
)

// DPConfig parameterises the Gaussian mechanism for statistic uploads.
type DPConfig struct {
	// Epsilon and Delta are the per-round (ε, δ) privacy budget of one
	// upload. Composition across rounds is the caller's concern.
	Epsilon, Delta float64
	// Clip is the L2 bound each uploaded vector is scaled into before
	// noising; it is also the mechanism's sensitivity.
	Clip float64
}

// Validate reports the first problem with the configuration.
func (c DPConfig) Validate() error {
	switch {
	case c.Epsilon <= 0:
		return fmt.Errorf("fed: DP epsilon must be positive, got %v", c.Epsilon)
	case c.Delta <= 0 || c.Delta >= 1:
		return fmt.Errorf("fed: DP delta must be in (0,1), got %v", c.Delta)
	case c.Clip <= 0:
		return fmt.Errorf("fed: DP clip bound must be positive, got %v", c.Clip)
	}
	return nil
}

// NoiseSigma returns the Gaussian-mechanism standard deviation
// σ = Clip·√(2·ln(1.25/δ))/ε (Dwork & Roth, Theorem A.1).
func (c DPConfig) NoiseSigma() float64 {
	return c.Clip * math.Sqrt(2*math.Log(1.25/c.Delta)) / c.Epsilon
}

// dpMomentClient wraps a MomentClient, privatising every uploaded vector.
type dpMomentClient struct {
	MomentClient
	cfg   DPConfig
	sigma float64
	rng   *rand.Rand
}

// WithDP wraps a moment-reporting client so its uploaded means and central
// moments are L2-clipped to cfg.Clip and perturbed with Gaussian noise of
// scale cfg.NoiseSigma(). Downloads (global statistics) pass through
// unchanged.
func WithDP(c MomentClient, cfg DPConfig, rng *rand.Rand) (MomentClient, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &dpMomentClient{MomentClient: c, cfg: cfg, sigma: cfg.NoiseSigma(), rng: rng}, nil
}

// privatize clips v into the L2 ball of radius Clip and adds N(0, σ²) noise
// element-wise, returning a fresh vector.
func (d *dpMomentClient) privatize(v *mat.Dense) *mat.Dense {
	out := v.Clone()
	if norm := mat.FrobNorm(out); norm > d.cfg.Clip {
		out.ScaleInPlace(d.cfg.Clip / norm)
	}
	data := out.Data()
	for i := range data {
		data[i] += d.sigma * d.rng.NormFloat64()
	}
	return out
}

// LocalMeans implements MomentClient with privatised uploads.
func (d *dpMomentClient) LocalMeans() ([]*mat.Dense, int, error) {
	means, n, err := d.MomentClient.LocalMeans()
	if err != nil {
		return nil, 0, err
	}
	out := make([]*mat.Dense, len(means))
	for i, m := range means {
		out[i] = d.privatize(m)
	}
	return out, n, nil
}

// CentralAroundGlobal implements MomentClient with privatised uploads.
func (d *dpMomentClient) CentralAroundGlobal(globalMeans []*mat.Dense) ([][]*mat.Dense, int, error) {
	moms, n, err := d.MomentClient.CentralAroundGlobal(globalMeans)
	if err != nil {
		return nil, 0, err
	}
	out := make([][]*mat.Dense, len(moms))
	for l, layer := range moms {
		out[l] = make([]*mat.Dense, len(layer))
		for k, v := range layer {
			out[l][k] = d.privatize(v)
		}
	}
	return out, n, nil
}
