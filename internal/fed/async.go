package fed

// async.go implements the buffered asynchronous aggregation mode
// (Config.Aggregation == AggAsync): a FedBuff-style no-barrier round loop in
// which the coordinator dispatches training jobs to every idle sampled party,
// collects the first BufferK arrivals of each logical round, and folds them
// into the global model with staleness-discounted weights w_i/(1+s)^α, where
// s is the number of logical rounds elapsed since the update's global was
// dispatched. Late arrivals are not discarded at a barrier — they fold into
// the next round's buffer — and the paper's central-moment aggregation
// decomposes into weighted sums, so the same discounted fold applies exactly
// to the mean/moment statistics and to aux state. Updates older than
// MaxStaleness at fold time are evicted (their party takes a policy failure,
// and the party's uplink codec residuals are dropped via Encoder.Reset since
// the encoded frame was never applied); a party benched by Quarantine while
// its update was in flight has that update rejected at fold time. The
// DropRound/Quarantine/quorum machinery of failure.go composes unchanged.
//
// Concurrency model: one worker goroutine per in-flight job, sequencing its
// party's client calls through runState.call (busy flag + per-call timeout,
// exactly the sync loop's per-op discipline). The coordinator alone touches
// runState's per-round bookkeeping, the buffer, and the codec per-party
// reset; globals and statistics snapshots handed to workers are immutable
// once published (every fold builds fresh matrices). A party is redispatched
// only when it is neither in flight nor holding a buffered update, so its
// uplink encoder is never used concurrently with a fold-time Reset.

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"time"

	"fedomd/internal/codec"
	"fedomd/internal/mat"
	"fedomd/internal/nn"
	"fedomd/internal/obs"
	"fedomd/internal/telemetry"
)

// AggregationMode selects Run's round topology.
type AggregationMode int

const (
	// AggSync is the barriered synchronous loop — the zero value,
	// bit-identical to the historical behavior.
	AggSync AggregationMode = iota
	// AggAsync is the buffered no-barrier mode implemented in this file.
	AggAsync
)

// String returns the flag-friendly name of the mode.
func (m AggregationMode) String() string {
	switch m {
	case AggSync:
		return "sync"
	case AggAsync:
		return "async"
	}
	return fmt.Sprintf("AggregationMode(%d)", int(m))
}

// ParseAggregation maps a flag value to a mode, case-insensitively; the
// empty string selects the synchronous default.
func ParseAggregation(s string) (AggregationMode, error) {
	switch strings.ToLower(s) {
	case "", "sync":
		return AggSync, nil
	case "async", "buffered":
		return AggAsync, nil
	}
	return AggSync, fmt.Errorf("fed: unknown aggregation mode %q (want sync or async)", s)
}

// ErrStaleUpdate reports a buffered update evicted because it exceeded
// Config.MaxStaleness at fold time; match with errors.Is.
var ErrStaleUpdate = errors.New("update older than MaxStaleness at fold time")

// asyncUpdate is one completed dispatch: everything a worker brought back
// from its party, tagged with the logical round whose global it trained on.
type asyncUpdate struct {
	party    int
	dispatch int   // logical round of the global this update trained on
	err      error // any failed client op; the rest of the fields are then partial

	loss      float64
	params    *nn.Params
	pooled    bool  // params drawn from the codec buffer pool
	encoded   bool  // an uplink frame was encoded (residuals advanced)
	encBytes  int64 // encoded upload size; -1 under raw accounting
	upBytes   int64
	downBytes int64
	means     []*mat.Dense
	count     int
	moms      [][]*mat.Dense
	aux       *nn.Params
	trainSecs float64
}

// asyncStats is the coordinator's current global-statistics state, handed to
// workers by value at dispatch. The slices are immutable once published:
// folds install fresh replacements rather than mutating in place.
type asyncStats struct {
	means   []*mat.Dense
	central [][]*mat.Dense
	aux     *nn.Params
}

// asyncEngine owns the buffered-aggregation state. All fields are
// coordinator-owned except arrivals, which workers send on (buffered to the
// fleet size, so a worker can never block: each party has at most one job in
// flight).
type asyncEngine struct {
	cfg *Config
	st  *runState
	cs  *codecState
	rec telemetry.Recorder
	tr  *obs.Tracer

	k        int     // buffer threshold per logical round
	maxStale int     // eviction bound, in logical rounds
	alpha    float64 // staleness-discount exponent

	inflight     []bool
	nFlight      int
	lastDispatch []int
	buffer       []*asyncUpdate // arrived, not yet folded; arrival order
	arrivals     chan *asyncUpdate
	stats        asyncStats
	allMoment    bool
}

func newAsyncEngine(cfg *Config, st *runState, cs *codecState, rec telemetry.Recorder, tr *obs.Tracer, allMoment bool) *asyncEngine {
	n := len(st.clients)
	eng := &asyncEngine{
		cfg:          cfg,
		st:           st,
		cs:           cs,
		rec:          rec,
		tr:           tr,
		k:            cfg.BufferK,
		maxStale:     cfg.MaxStaleness,
		alpha:        cfg.StalenessAlpha,
		inflight:     make([]bool, n),
		lastDispatch: make([]int, n),
		arrivals:     make(chan *asyncUpdate, n),
		allMoment:    allMoment,
	}
	if eng.k <= 0 {
		eng.k = (n + 1) / 2 // ⌈M/2⌉: absorb the slow half of the fleet
	}
	if eng.maxStale <= 0 {
		eng.maxStale = 8
	}
	if eng.alpha <= 0 {
		eng.alpha = 1
	}
	for i := range eng.lastDispatch {
		eng.lastDispatch[i] = -1
	}
	return eng
}

// discount is the staleness weight factor 1/(1+s)^α.
func (eng *asyncEngine) discount(staleness int) float64 {
	return 1 / math.Pow(1+float64(staleness), eng.alpha)
}

// discard releases an update's pooled buffers and, when an uplink frame was
// encoded but never applied, drops the party's error-feedback residuals: the
// residual map only has meaning against the chain of frames the server
// actually folded, so an evicted or rejected frame would silently corrupt
// the party's next delta encode.
func (eng *asyncEngine) discard(u *asyncUpdate) {
	if u.pooled && u.params != nil {
		codec.PutParams(u.params)
		u.params = nil
	}
	if u.encoded && eng.cs != nil {
		eng.cs.up[u.party].Reset()
	}
}

// release frees a folded update's pooled buffers (its frame WAS applied, so
// residuals stay).
func (eng *asyncEngine) release(u *asyncUpdate) {
	if u.pooled && u.params != nil {
		codec.PutParams(u.params)
		u.params = nil
	}
}

// shutdown waits out every in-flight worker and discards whatever never
// folded, so pooled buffers return and no goroutine outlives the run.
func (eng *asyncEngine) shutdown() {
	for eng.nFlight > 0 {
		u := <-eng.arrivals
		eng.inflight[u.party] = false
		eng.nFlight--
		eng.discard(u)
	}
	for _, u := range eng.buffer {
		eng.discard(u)
	}
	eng.buffer = nil
}

// dispatch hands party i a training job against the current global and
// statistics snapshot. The worker sequences the party's ops through
// runState.call and always delivers exactly one asyncUpdate.
func (eng *asyncEngine) dispatch(parent obs.SpanContext, i, round int, global *nn.Params) {
	eng.inflight[i] = true
	eng.nFlight++
	eng.lastDispatch[i] = round
	eng.rec.Count(MetricAsyncDispatched, 1)
	snap := eng.stats
	go func() {
		u := &asyncUpdate{party: i, dispatch: round, encBytes: -1}
		jsp := eng.tr.Start(parent, obs.SpanAsyncJob)
		jsp.SetAttr(obs.AttrParty, eng.st.clients[i].Name())
		jsp.SetAttr(obs.AttrDispatch, round)
		eng.runJob(jsp.Context(), u, i, round, global, snap)
		if u.err != nil {
			jsp.SetAttr(obs.AttrErr, u.err.Error())
		}
		jsp.End()
		eng.arrivals <- u
	}()
}

// runJob drives one party through the full per-round protocol — broadcast,
// statistics, training, upload — writing results into u. Any failed op sets
// u.err and stops the job; the coordinator routes it to the failure policy.
func (eng *asyncEngine) runJob(ctx obs.SpanContext, u *asyncUpdate, i, round int, global *nn.Params, snap asyncStats) {
	st := eng.st
	c := st.clients[i]

	if err := st.call(i, func() error { return c.SetParams(global) }); err != nil {
		u.err = fmt.Errorf("fed: broadcast to %s: %w", c.Name(), err)
		return
	}
	if eng.cs != nil && !transportCoded(c) {
		n, err := eng.cs.broadcast(i, global)
		if err != nil {
			u.err = err
			return
		}
		u.downBytes += n
	} else {
		u.downBytes += int64(global.Bytes())
	}

	if mc, ok := c.(MomentClient); ok && eng.allMoment {
		var means []*mat.Dense
		var n int
		err := st.call(i, func() error {
			var e error
			means, n, e = mc.LocalMeans()
			return e
		})
		if err == nil && !finiteVecs(means) {
			err = ErrNonFinite
		}
		if err != nil {
			u.err = fmt.Errorf("fed: means from %s: %w", c.Name(), err)
			return
		}
		u.means, u.count = means, n
		u.upBytes += bytesOfVecs(means) + 8
		if snap.means != nil {
			u.downBytes += bytesOfVecs(snap.means)
			var moms [][]*mat.Dense
			err := st.call(i, func() error {
				var e error
				moms, _, e = mc.CentralAroundGlobal(snap.means)
				return e
			})
			if err == nil && !finiteMoms(moms) {
				err = ErrNonFinite
			}
			if err != nil {
				u.err = fmt.Errorf("fed: moments from %s: %w", c.Name(), err)
				return
			}
			u.moms = moms
			for _, layer := range moms {
				u.upBytes += bytesOfVecs(layer)
			}
			u.upBytes += 8
			if snap.central != nil {
				if err := st.call(i, func() error {
					mc.SetGlobalStats(snap.means, snap.central)
					return nil
				}); err != nil {
					u.err = fmt.Errorf("fed: global stats to %s: %w", c.Name(), err)
					return
				}
				for _, layer := range snap.central {
					u.downBytes += bytesOfVecs(layer)
				}
			}
		}
	}

	if ac, ok := c.(AuxClient); ok && snap.aux != nil {
		if err := st.call(i, func() error { return ac.DownloadAux(snap.aux) }); err != nil {
			u.err = fmt.Errorf("fed: aux download to %s: %w", c.Name(), err)
			return
		}
		u.downBytes += int64(snap.aux.Bytes())
	}

	clientSpan := telemetry.StartSpan(eng.rec, MetricClientTrainSecs)
	tsp := eng.tr.Start(ctx, obs.SpanClientTrain)
	tsp.SetAttr(obs.AttrParty, c.Name())
	t0 := time.Now()
	var loss float64
	err := st.call(i, func() error {
		l, e := c.TrainLocal(round)
		loss = l
		return e
	})
	u.trainSecs = time.Since(t0).Seconds()
	if err != nil {
		clientSpan.Cancel()
		tsp.End()
		u.err = fmt.Errorf("fed: client %s round %d: %w", c.Name(), round, err)
		return
	}
	clientSpan.End()
	tsp.End()
	u.loss = loss

	usp := eng.tr.Start(ctx, obs.SpanClientUpload)
	usp.SetAttr(obs.AttrParty, c.Name())
	var p *nn.Params
	err = st.call(i, func() error { p = c.Params(); return nil })
	if err == nil && eng.cs != nil && !transportCoded(c) {
		dec, enc, cerr := eng.cs.upload(i, p)
		if cerr != nil {
			err = cerr
		} else {
			p = dec
			u.params = dec // discard() releases it if a later screen fails
			u.pooled = true
			u.encoded = true
			u.encBytes = enc
		}
	}
	if err == nil && !finiteParams(p) {
		err = ErrNonFinite
	}
	if err != nil {
		usp.SetAttr(obs.AttrErr, err.Error())
		usp.End()
		u.err = fmt.Errorf("fed: upload from %s: %w", c.Name(), err)
		return
	}
	u.params = p
	if u.encBytes >= 0 {
		u.upBytes += u.encBytes
		usp.SetAttr(obs.AttrBytesEnc, u.encBytes)
	} else {
		u.upBytes += int64(p.Bytes())
	}
	usp.End()

	if ac, ok := c.(AuxClient); ok {
		var aux *nn.Params
		err := st.call(i, func() error { aux = ac.UploadAux(); return nil })
		if err == nil && aux != nil && !finiteParams(aux) {
			err = ErrNonFinite
		}
		if err != nil {
			u.err = fmt.Errorf("fed: aux upload from %s: %w", c.Name(), err)
			return
		}
		if aux != nil {
			u.aux = aux
			u.upBytes += int64(aux.Bytes())
		}
	}
}

// absorb files one arrival: failures go to the failure policy (the returned
// error aborts the run under FailFast), successes join the buffer and charge
// the collecting round's byte accounting.
func (eng *asyncEngine) absorb(u *asyncUpdate, stats *RoundStats) error {
	eng.inflight[u.party] = false
	eng.nFlight--
	if u.err != nil {
		eng.discard(u)
		return eng.st.fail(u.party, u.err)
	}
	stats.BytesUp += u.upBytes
	stats.BytesDown += u.downBytes
	eng.buffer = append(eng.buffer, u)
	return nil
}

// foldOutcome summarizes one fold for the history row and the observer feed.
type foldOutcome struct {
	global    *nn.Params // nil when nothing folded (quorum skip handles it)
	folded    int
	trainLoss float64
	staleP99  float64
	parties   []obs.PartyObservation
}

// statsShapeOK screens an update's statistics payload against a reference
// before the fold touches any matrix math (shape mismatches would otherwise
// panic inside the in-place kernels).
func statsShapeOK(u *asyncUpdate, ref *asyncUpdate) bool {
	if len(u.means) != len(ref.means) {
		return false
	}
	for l := range u.means {
		if u.means[l].Rows() != ref.means[l].Rows() || u.means[l].Cols() != ref.means[l].Cols() {
			return false
		}
	}
	if u.moms != nil && ref.moms != nil {
		if len(u.moms) != len(ref.moms) {
			return false
		}
		for l := range u.moms {
			if len(u.moms[l]) != len(ref.moms[l]) {
				return false
			}
		}
	}
	return true
}

// fold consumes the first K buffered updates: it rejects updates from
// parties benched while in flight, evicts updates past the staleness bound
// (a policy failure for the party), staleness-discounts the survivors'
// weights, and merges params, statistics, and aux state. The merged global
// is returned; on lost quorum the survivors are pushed back into the buffer
// and an ErrQuorumLost-wrapping error returned, so QuorumSkip keeps them for
// the next round.
func (eng *asyncEngine) fold(round int, global *nn.Params, stats *RoundStats) (*foldOutcome, error) {
	st := eng.st
	take := eng.buffer
	if len(take) > eng.k {
		take = take[:eng.k]
	}
	rest := eng.buffer[len(take):]
	if len(rest) > 0 {
		eng.rec.Count(MetricAsyncCarried, int64(len(rest)))
	}
	eng.buffer = append([]*asyncUpdate(nil), rest...)

	var kept []*asyncUpdate
	var statsRef *asyncUpdate
	for _, u := range take {
		if st.benched(u.party, round) {
			// Benched while in flight: the bench already penalized the
			// party, so the update is rejected without a fresh strike.
			eng.rec.Count(MetricAsyncRejected, 1)
			eng.discard(u)
			continue
		}
		if s := round - u.dispatch; s > eng.maxStale {
			eng.rec.Count(MetricAsyncEvicted, 1)
			ferr := st.fail(u.party, fmt.Errorf("fed: update from %s dispatched round %d folded round %d: %w",
				st.clients[u.party].Name(), u.dispatch, round, ErrStaleUpdate))
			eng.discard(u)
			if ferr != nil {
				return nil, ferr
			}
			continue
		}
		badShape := global.Compatible(u.params)
		if badShape == nil && eng.allMoment && u.means != nil {
			if statsRef == nil {
				statsRef = u
			} else if !statsShapeOK(u, statsRef) {
				badShape = fmt.Errorf("statistics shape mismatch")
			}
		}
		if badShape != nil {
			ferr := st.fail(u.party, fmt.Errorf("fed: upload from %s: %w", st.clients[u.party].Name(), badShape))
			eng.discard(u)
			if ferr != nil {
				return nil, ferr
			}
			continue
		}
		kept = append(kept, u)
	}

	if err := st.quorum(round, len(kept)); err != nil {
		// Push the survivors back so a skipped round keeps, not loses, them.
		eng.buffer = append(kept, eng.buffer...)
		return nil, err
	}

	// Deterministic fold order: the arrival schedule decides WHICH updates
	// are in the buffer, but given that set the math is order-independent.
	sort.Slice(kept, func(a, b int) bool {
		if kept[a].dispatch != kept[b].dispatch {
			return kept[a].dispatch < kept[b].dispatch
		}
		return kept[a].party < kept[b].party
	})

	out := &foldOutcome{folded: len(kept)}
	sets := make([]*nn.Params, len(kept))
	ws := make([]float64, len(kept))
	stales := make([]float64, len(kept))
	var lossSum, lossW float64
	for n, u := range kept {
		s := round - u.dispatch
		stales[n] = float64(s)
		w := st.weights[u.party] * eng.discount(s)
		sets[n] = u.params
		ws[n] = w
		lossSum += w * u.loss
		lossW += w
		st.touched[u.party] = true
		eng.rec.Observe(MetricAsyncStaleness, float64(s))
		out.parties = append(out.parties, obs.PartyObservation{
			Name:         st.clients[u.party].Name(),
			TrainSeconds: u.trainSecs,
			Dropped:      st.dropped[u.party],
		})
	}
	eng.rec.Count(MetricAsyncFolded, int64(len(kept)))
	if lossW > 0 {
		out.trainLoss = lossSum / lossW
	}
	sort.Float64s(stales)
	out.staleP99 = stales[(len(stales)*99)/100]

	agg, err := nn.Average(sets, ws)
	if err != nil {
		return nil, fmt.Errorf("fed: aggregation: %w", err)
	}
	out.global = agg

	if eng.allMoment {
		eng.foldStats(kept, round)
	}
	if err := eng.foldAux(kept, round); err != nil {
		return nil, err
	}
	for _, u := range kept {
		eng.release(u)
	}
	return out, nil
}

// foldStats merges the kept updates' means and central moments into the
// engine's statistics state with the same staleness-discounted sample-count
// weights the sync aggregators use (count_i/(1+s)^α): the paper's moment
// aggregation is a weighted sum, so partial discounted folding is exact for
// a fixed center. Fresh matrices are installed — snapshots in flight keep
// reading the old ones.
func (eng *asyncEngine) foldStats(kept []*asyncUpdate, round int) {
	var contrib []*asyncUpdate
	for _, u := range kept {
		if u.means != nil && u.count > 0 {
			contrib = append(contrib, u)
		}
	}
	if len(contrib) == 0 {
		return
	}
	layers := len(contrib[0].means)
	newMeans := make([]*mat.Dense, layers)
	for l := 0; l < layers; l++ {
		acc := mat.New(contrib[0].means[l].Rows(), contrib[0].means[l].Cols())
		var wsum float64
		for _, u := range contrib {
			w := float64(u.count) * eng.discount(round-u.dispatch)
			acc.AXPY(w, u.means[l])
			wsum += w
		}
		acc.ScaleInPlace(1 / wsum)
		newMeans[l] = acc
	}
	eng.stats.means = newMeans

	var momful []*asyncUpdate
	for _, u := range contrib {
		if len(u.moms) == layers {
			momful = append(momful, u)
		}
	}
	if len(momful) == 0 {
		return // keep the previous central moments until new ones arrive
	}
	newCentral := make([][]*mat.Dense, layers)
	for l := 0; l < layers; l++ {
		orders := len(momful[0].moms[l])
		newCentral[l] = make([]*mat.Dense, orders)
		for o := 0; o < orders; o++ {
			acc := mat.New(momful[0].moms[l][o].Rows(), momful[0].moms[l][o].Cols())
			var wsum float64
			for _, u := range momful {
				w := float64(u.count) * eng.discount(round-u.dispatch)
				acc.AXPY(w, u.moms[l][o])
				wsum += w
			}
			acc.ScaleInPlace(1 / wsum)
			newCentral[l][o] = acc
		}
	}
	eng.stats.central = newCentral
}

// foldAux merges the kept updates' aux uploads (unit weights discounted by
// staleness, mirroring the sync auxExchange's plain average) and installs
// the aggregate as the state future dispatches download.
func (eng *asyncEngine) foldAux(kept []*asyncUpdate, round int) error {
	var sets []*nn.Params
	var ws []float64
	for _, u := range kept {
		if u.aux != nil {
			sets = append(sets, u.aux)
			ws = append(ws, eng.discount(round-u.dispatch))
		}
	}
	if len(sets) == 0 {
		return nil
	}
	globalAux, err := nn.Average(sets, ws)
	if err != nil {
		return fmt.Errorf("fed: aux aggregation: %w", err)
	}
	eng.stats.aux = globalAux
	return nil
}

// runAsync is the buffered no-barrier round loop. Run has already validated
// the config, built the shared run state, and published the run span; this
// loop replaces only the barriered phase sequence.
func runAsync(cfg *Config, st *runState, cs *codecState, rec telemetry.Recorder, tr *obs.Tracer, runSpan *obs.Span, global *nn.Params, res *Result, sampler *rand.Rand, evalEvery int, allMoment bool) (*Result, error) {
	clients := st.clients
	eng := newAsyncEngine(cfg, st, cs, rec, tr, allMoment)
	runSpan.SetAttr(obs.AttrAggregation, AggAsync.String())

	badRounds := 0
	startRound, samplerDraws := 0, 0
	if cfg.Resume != nil {
		g, err := st.restore(cfg.Resume, res, &badRounds, &startRound, &samplerDraws)
		if err != nil {
			return nil, err
		}
		global = g
		for i := 0; i < samplerDraws; i++ {
			sampler.Perm(len(clients)) // replay the sampler to its saved state
		}
		if err := eng.restore(cfg.Resume); err != nil {
			return nil, err
		}
	}

	for round := startRound; round < cfg.Rounds; round++ {
		stats := RoundStats{Round: round, Start: time.Now()}
		roundSpan := telemetry.StartSpan(rec, MetricRoundSeconds)
		rsp := tr.Start(runSpan.Context(), obs.SpanRound)
		rsp.SetAttr(obs.AttrRound, round)
		tr.SetActive(rsp.Context())
		resets0 := wireResets.Value()
		evaluated := false
		stalled := false
		var fold *foldOutcome
		st.beginRound()
		if cs != nil {
			cs.beginRound()
		}

		roundErr := func() error {
			reach := st.reachable(round)
			if err := st.quorum(round, len(reach)); err != nil {
				return err
			}

			// Bootstrap the statistics state with one synchronous exchange
			// (broadcast + Algorithm 1's two legs) the first time through:
			// dispatches need global means to center moments on, and a
			// resumed run restores them from the checkpoint instead.
			if allMoment && eng.stats.means == nil {
				sp := telemetry.StartSpan(rec, MetricBroadcastSeconds)
				osp := tr.Start(rsp.Context(), obs.SpanBroadcast)
				for _, i := range reach {
					c := clients[i]
					st.touched[i] = true
					if err := st.call(i, func() error { return c.SetParams(global) }); err != nil {
						if ferr := st.fail(i, fmt.Errorf("fed: broadcast to %s: %w", c.Name(), err)); ferr != nil {
							sp.End()
							osp.End()
							return ferr
						}
						continue
					}
					if cs != nil && !transportCoded(c) {
						n, err := cs.broadcast(i, global)
						if err != nil {
							sp.End()
							osp.End()
							return err
						}
						stats.BytesDown += n
					} else {
						stats.BytesDown += int64(global.Bytes())
					}
				}
				sp.End()
				osp.End()
				sp = telemetry.StartSpan(rec, MetricMomentsSeconds)
				osp = tr.Start(rsp.Context(), obs.SpanMoments)
				up, down, gm, gc, err := st.momentExchange(round, st.aliveOf(reach))
				sp.End()
				osp.End()
				if err != nil {
					return err
				}
				stats.BytesUp += up
				stats.BytesDown += down
				eng.stats.means = gm
				eng.stats.central = gc
			}

			// Evaluate the global entering the round on the idle parties
			// (an in-flight party cannot be probed without violating the
			// one-call-at-a-time contract). Installs are not byte-charged:
			// this is scoring, not protocol traffic.
			if round%evalEvery == 0 || round == cfg.Rounds-1 {
				evalIdx := make([]int, 0, len(reach))
				for _, i := range reach {
					if eng.inflight[i] || st.dropped[i] {
						continue
					}
					c := clients[i]
					if err := st.call(i, func() error { return c.SetParams(global) }); err != nil {
						continue // lenient, like st.evaluate
					}
					evalIdx = append(evalIdx, i)
				}
				if len(evalIdx) > 0 {
					sp := telemetry.StartSpan(rec, MetricEvalSeconds)
					osp := tr.Start(rsp.Context(), obs.SpanEval)
					stats.ValAcc, stats.TestAcc = st.evaluate(evalIdx, cfg.Sequential)
					sp.End()
					osp.End()
					evaluated = true
					rec.Gauge(MetricValAcc, stats.ValAcc)
					rec.Gauge(MetricTestAcc, stats.TestAcc)
					if stats.ValAcc > res.BestValAcc || res.BestRound < 0 {
						res.BestValAcc = stats.ValAcc
						res.TestAtBestVal = stats.TestAcc
						res.BestRound = round
						badRounds = 0
					} else {
						badRounds++
					}
				}
			}

			// Dispatch to every sampled party that is idle and holds no
			// buffered update (so a fold-time Encoder.Reset can never race
			// the party's own uplink encoder).
			activeIdx := reach
			if cfg.ClientFraction > 0 && cfg.ClientFraction < 1 {
				k := ceilFraction(cfg.ClientFraction, len(clients))
				perm := sampler.Perm(len(clients))
				samplerDraws++
				sel := make([]int, 0, k)
				for _, idx := range perm {
					if st.benched(idx, round) {
						continue
					}
					sel = append(sel, idx)
					if len(sel) == k {
						break
					}
				}
				sort.Ints(sel)
				activeIdx = sel
			}
			buffered := make([]bool, len(clients))
			for _, u := range eng.buffer {
				buffered[u.party] = true
			}
			for _, i := range activeIdx {
				if eng.inflight[i] || buffered[i] || st.dropped[i] {
					continue
				}
				eng.dispatch(rsp.Context(), i, round, global)
			}

			// Collect until the buffer holds K updates, nothing more can
			// arrive, or the round deadline expires.
			waitSpan := telemetry.StartSpan(rec, MetricAsyncBufferWait)
			var deadline <-chan time.Time
			var timer *time.Timer
			if cfg.BufferTimeout > 0 {
				timer = time.NewTimer(cfg.BufferTimeout)
				deadline = timer.C
			}
		collect:
			for len(eng.buffer) < eng.k && eng.nFlight > 0 {
				select {
				case u := <-eng.arrivals:
					if err := eng.absorb(u, &stats); err != nil {
						if timer != nil {
							timer.Stop()
						}
						waitSpan.End()
						return err
					}
				case <-deadline:
					stalled = true
					rec.Count(MetricAsyncStalls, 1)
					break collect
				}
			}
			if timer != nil {
				timer.Stop()
			}
			waitSpan.End()

			// Fold the buffer into a new global.
			sp := telemetry.StartSpan(rec, MetricAggregateSeconds)
			osp := tr.Start(rsp.Context(), obs.SpanFold)
			out, err := eng.fold(round, global, &stats)
			if out != nil {
				osp.SetAttr(obs.AttrBufferFill, out.folded)
				osp.SetAttr(obs.AttrBufferTarget, eng.k)
				osp.SetAttr(obs.AttrStalenessP99, out.staleP99)
			}
			sp.End()
			osp.End()
			if err != nil {
				return err
			}
			fold = out
			stats.TrainLoss = out.trainLoss
			global = out.global
			return nil
		}()
		if roundErr != nil {
			if !errors.Is(roundErr, ErrQuorumLost) || cfg.QuorumPolicy != QuorumSkip {
				// Aborting mid-round: emit the trace record, drop the
				// latency sample, and reap the in-flight workers.
				roundSpan.Cancel()
				rsp.End()
				eng.shutdown()
				return nil, roundErr
			}
			stats.Degraded = true
		}

		st.endRound(round, &stats)
		stats.End = time.Now()
		roundSpan.End()
		rec.Count(MetricRounds, 1)
		rec.Count(MetricActiveClients, int64(eng.nFlight+len(eng.buffer)))
		rec.Count(MetricBytesUp, stats.BytesUp)
		rec.Count(MetricBytesDown, stats.BytesDown)

		res.History = append(res.History, stats)
		res.TotalBytesUp += stats.BytesUp
		res.TotalBytesDown += stats.BytesDown

		if cfg.Observer != nil {
			benchedNow := 0
			for i := range clients {
				if st.benched(i, round+1) {
					benchedNow++
				}
			}
			o := obs.RoundObservation{
				Round:          round,
				TrainLoss:      stats.TrainLoss,
				ValAcc:         stats.ValAcc,
				TestAcc:        stats.TestAcc,
				BestValAcc:     res.BestValAcc,
				Evaluated:      evaluated,
				Degraded:       stats.Degraded,
				Dropped:        stats.Dropped,
				Quarantined:    benchedNow,
				NonFinite:      st.nonFinite,
				CodecResets:    int(wireResets.Value() - resets0),
				BytesUp:        stats.BytesUp,
				BytesDown:      stats.BytesDown,
				Async:          true,
				BufferTarget:   eng.k,
				BufferStalled:  stalled,
				StalenessLimit: float64(eng.maxStale),
			}
			if fold != nil {
				o.BufferFill = fold.folded
				o.StalenessP99 = fold.staleP99
				o.Parties = fold.parties
			}
			cfg.Observer.ObserveRound(rsp.Context(), o)
		}
		rsp.End()

		if cfg.CheckpointEvery > 0 && cfg.CheckpointWriter != nil && (round+1)%cfg.CheckpointEvery == 0 {
			ck := st.snapshot(round+1, samplerDraws, global, res, badRounds)
			eng.snapshotInto(ck)
			if err := cfg.CheckpointWriter(ck); err != nil {
				eng.shutdown()
				return nil, fmt.Errorf("fed: checkpoint after round %d: %w", round, err)
			}
		}
		if cfg.Patience > 0 && badRounds >= cfg.Patience {
			break
		}
	}
	eng.shutdown()
	res.FinalParams = global
	res.ClientFailures = st.failures

	if err := finalScore(cfg, st, rec, res, global); err != nil {
		return nil, err
	}
	res.End = time.Now()
	return res, nil
}
