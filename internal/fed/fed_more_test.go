package fed

import (
	"testing"

	"fedomd/internal/mat"
	"fedomd/internal/moments"
	"fedomd/internal/nn"
)

func TestEvalEverySkipsRounds(t *testing.T) {
	a := newFakeClient("a", 1, 0)
	res, err := Run(Config{Rounds: 6, EvalEvery: 3}, []Client{a})
	if err != nil {
		t.Fatal(err)
	}
	// Rounds 0 and 3 evaluated; rounds 1, 2, 4 skipped; final round 5 forced.
	evaluated := 0
	for _, h := range res.History {
		if h.ValAcc > 0 {
			evaluated++
		}
	}
	if evaluated != 3 {
		t.Fatalf("evaluated %d rounds, want 3 (0, 3, and final)", evaluated)
	}
}

func TestIdenticalClientsFixedPoint(t *testing.T) {
	// If every client trains to the same weights, FedAvg must return exactly
	// those weights regardless of sample weighting.
	a := newFakeClient("a", 9, 0)
	a.trainVal = 3.5
	b := newFakeClient("b", 1, 0)
	b.trainVal = 3.5
	res, err := Run(Config{Rounds: 2}, []Client{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.FinalParams.Get("w").At(0, 0); got != 3.5 {
		t.Fatalf("fixed point violated: %v", got)
	}
}

func TestMomentExchangeLayerMismatchError(t *testing.T) {
	d1, _ := mat.NewFromRows([][]float64{{1}, {2}})
	a := &momentFake{fakeClient: newFakeClient("a", 1, 0), data: d1}
	b := &twoLayerMomentFake{momentFake{fakeClient: newFakeClient("b", 1, 0), data: d1}}
	if _, err := Run(Config{Rounds: 1}, []Client{a, b}); err == nil {
		t.Fatal("layer count mismatch accepted")
	}
}

// twoLayerMomentFake reports two layers where momentFake reports one.
type twoLayerMomentFake struct{ momentFake }

func (m *twoLayerMomentFake) LocalMeans() ([]*mat.Dense, int, error) {
	mean := mat.MeanRows(m.data)
	return []*mat.Dense{mean, mean}, m.data.Rows(), nil
}

func (m *twoLayerMomentFake) CentralAroundGlobal(g []*mat.Dense) ([][]*mat.Dense, int, error) {
	c := moments.CentralAround(m.data, g[0], 5)
	return [][]*mat.Dense{c, c}, m.data.Rows(), nil
}

func TestResultTrafficConsistency(t *testing.T) {
	a := newFakeClient("a", 1, 0)
	b := newFakeClient("b", 2, 0)
	res, err := Run(Config{Rounds: 4}, []Client{a, b})
	if err != nil {
		t.Fatal(err)
	}
	var up, down int64
	for _, h := range res.History {
		up += h.BytesUp
		down += h.BytesDown
	}
	if up != res.TotalBytesUp || down != res.TotalBytesDown {
		t.Fatal("per-round traffic does not sum to totals")
	}
	// Weight traffic per round: 2 clients × 8 bytes each way.
	if res.History[0].BytesDown != 16 || res.History[0].BytesUp != 16 {
		t.Fatalf("weight traffic wrong: %+v", res.History[0])
	}
}

func TestAverageIdempotentProperty(t *testing.T) {
	p := nn.NewParams()
	w := mat.New(2, 2)
	w.Set(0, 1, 4)
	p.Add("w", w)
	avg, err := nn.Average([]*nn.Params{p.Clone(), p.Clone(), p.Clone()}, []float64{1, 5, 2})
	if err != nil {
		t.Fatal(err)
	}
	if d, _ := avg.L2Distance(p); d > 1e-12 {
		t.Fatalf("average of identical sets moved by %v", d)
	}
}
