package fed

import (
	"errors"
	"sync/atomic"
	"testing"

	"fedomd/internal/mat"
	"fedomd/internal/moments"
	"fedomd/internal/nn"
)

// fakeClient is a controllable Client for runtime tests.
type fakeClient struct {
	name     string
	samples  int
	params   *nn.Params
	trainVal float64 // value TrainLocal writes into the parameter
	loss     float64
	valAcc   [2]int
	testAcc  [2]int
	trainErr error

	trainCalls int32
	setCalls   int32
	received   []float64 // values seen via SetParams
}

func newFakeClient(name string, samples int, initVal float64) *fakeClient {
	p := nn.NewParams()
	m := mat.New(1, 1)
	m.Set(0, 0, initVal)
	p.Add("w", m)
	return &fakeClient{name: name, samples: samples, params: p, trainVal: initVal,
		valAcc: [2]int{1, 2}, testAcc: [2]int{1, 2}}
}

func (f *fakeClient) Name() string       { return f.name }
func (f *fakeClient) NumSamples() int    { return f.samples }
func (f *fakeClient) Params() *nn.Params { return f.params }
func (f *fakeClient) SetParams(g *nn.Params) error {
	atomic.AddInt32(&f.setCalls, 1)
	f.received = append(f.received, g.Get("w").At(0, 0))
	return f.params.CopyFrom(g)
}
func (f *fakeClient) TrainLocal(int) (float64, error) {
	atomic.AddInt32(&f.trainCalls, 1)
	if f.trainErr != nil {
		return 0, f.trainErr
	}
	f.params.Get("w").Set(0, 0, f.trainVal)
	return f.loss, nil
}
func (f *fakeClient) EvalVal() (int, int)  { return f.valAcc[0], f.valAcc[1] }
func (f *fakeClient) EvalTest() (int, int) { return f.testAcc[0], f.testAcc[1] }

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{Rounds: 1}, nil); err == nil {
		t.Fatal("no clients accepted")
	}
	if _, err := Run(Config{Rounds: 0}, []Client{newFakeClient("a", 1, 0)}); err == nil {
		t.Fatal("0 rounds accepted")
	}
	if _, err := Run(Config{Rounds: 1}, []Client{nil}); err == nil {
		t.Fatal("nil client accepted")
	}
}

func TestRunFedAvgWeighted(t *testing.T) {
	// Client a (3 samples) trains to 1, client b (1 sample) trains to 5:
	// aggregate should be 2.
	a := newFakeClient("a", 3, 0)
	a.trainVal = 1
	b := newFakeClient("b", 1, 0)
	b.trainVal = 5
	res, err := Run(Config{Rounds: 1}, []Client{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.FinalParams.Get("w").At(0, 0); got != 2 {
		t.Fatalf("FedAvg = %v want 2", got)
	}
	if res.TotalBytesUp == 0 || res.TotalBytesDown == 0 {
		t.Fatal("communication accounting missing")
	}
}

func TestRunBroadcastsAggregate(t *testing.T) {
	a := newFakeClient("a", 1, 0)
	a.trainVal = 2
	b := newFakeClient("b", 1, 0)
	b.trainVal = 4
	if _, err := Run(Config{Rounds: 2}, []Client{a, b}); err != nil {
		t.Fatal(err)
	}
	// Round 0 broadcast is the initial model (0); round 1 broadcast is the
	// round-0 aggregate (3); the final install delivers the round-1
	// aggregate (3 again) for the closing scoring pass.
	if len(a.received) != 3 || a.received[0] != 0 || a.received[1] != 3 || a.received[2] != 3 {
		t.Fatalf("broadcast values = %v want [0 3 3]", a.received)
	}
}

func TestRunParallelAndSequentialAgree(t *testing.T) {
	mk := func() []Client {
		a := newFakeClient("a", 2, 0)
		a.trainVal = 1
		b := newFakeClient("b", 3, 0)
		b.trainVal = 2
		c := newFakeClient("c", 5, 0)
		c.trainVal = 3
		return []Client{a, b, c}
	}
	par, err := Run(Config{Rounds: 3}, mk())
	if err != nil {
		t.Fatal(err)
	}
	seq, err := Run(Config{Rounds: 3, Sequential: true}, mk())
	if err != nil {
		t.Fatal(err)
	}
	if par.FinalParams.Get("w").At(0, 0) != seq.FinalParams.Get("w").At(0, 0) {
		t.Fatal("parallel and sequential runs disagree")
	}
}

func TestRunPropagatesTrainError(t *testing.T) {
	a := newFakeClient("a", 1, 0)
	a.trainErr = errors.New("boom")
	if _, err := Run(Config{Rounds: 1}, []Client{a}); err == nil {
		t.Fatal("training error swallowed")
	}
}

func TestEarlyStoppingPatience(t *testing.T) {
	// Constant validation accuracy: after the first round nothing improves,
	// so patience 3 must stop well before 50 rounds.
	a := newFakeClient("a", 1, 0)
	res, err := Run(Config{Rounds: 50, Patience: 3}, []Client{a})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) >= 50 {
		t.Fatalf("early stopping did not fire: %d rounds", len(res.History))
	}
	if res.BestRound != 0 {
		t.Fatalf("best round = %d want 0", res.BestRound)
	}
}

func TestAccuracyWeightedAcrossClients(t *testing.T) {
	a := newFakeClient("a", 1, 0)
	a.testAcc = [2]int{9, 10} // 90% on 10 nodes
	b := newFakeClient("b", 1, 0)
	b.testAcc = [2]int{0, 30} // 0% on 30 nodes
	res, err := Run(Config{Rounds: 1}, []Client{a, b})
	if err != nil {
		t.Fatal(err)
	}
	want := 9.0 / 40.0
	if got := res.History[0].TestAcc; got != want {
		t.Fatalf("weighted test acc = %v want %v", got, want)
	}
}

func TestRunLocalOnlyNoBroadcast(t *testing.T) {
	a := newFakeClient("a", 1, 0)
	a.trainVal = 1
	b := newFakeClient("b", 1, 0)
	b.trainVal = 9
	res, err := RunLocalOnly(Config{Rounds: 2}, []Client{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if a.setCalls != 0 || b.setCalls != 0 {
		t.Fatal("RunLocalOnly must not broadcast")
	}
	// Parameters stay local (no averaging).
	if a.params.Get("w").At(0, 0) != 1 || b.params.Get("w").At(0, 0) != 9 {
		t.Fatal("local params were aggregated")
	}
	if res.TotalBytesUp != 0 {
		t.Fatal("local-only run counted communication")
	}
}

// momentFake implements MomentClient over fixed local data.
type momentFake struct {
	*fakeClient
	data *mat.Dense

	gotMeans   []*mat.Dense
	gotCentral [][]*mat.Dense
}

func (m *momentFake) LocalMeans() ([]*mat.Dense, int, error) {
	return []*mat.Dense{mat.MeanRows(m.data)}, m.data.Rows(), nil
}

func (m *momentFake) CentralAroundGlobal(globalMeans []*mat.Dense) ([][]*mat.Dense, int, error) {
	return [][]*mat.Dense{moments.CentralAround(m.data, globalMeans[0], 5)}, m.data.Rows(), nil
}

func (m *momentFake) SetGlobalStats(means []*mat.Dense, central [][]*mat.Dense) {
	m.gotMeans = means
	m.gotCentral = central
}

func TestMomentExchangeMatchesPooled(t *testing.T) {
	d1, _ := mat.NewFromRows([][]float64{{0}, {2}})
	d2, _ := mat.NewFromRows([][]float64{{10}, {12}, {14}, {16}})
	a := &momentFake{fakeClient: newFakeClient("a", 2, 0), data: d1}
	b := &momentFake{fakeClient: newFakeClient("b", 4, 0), data: d2}
	if _, err := Run(Config{Rounds: 1}, []Client{a, b}); err != nil {
		t.Fatal(err)
	}
	if a.gotMeans == nil || b.gotMeans == nil {
		t.Fatal("global stats not delivered")
	}
	// Pooled reference over all 6 values.
	pooled, _ := mat.NewFromRows([][]float64{{0}, {2}, {10}, {12}, {14}, {16}})
	wantMean := mat.MeanRows(pooled)
	wantCentral := moments.CentralAround(pooled, wantMean, 5)
	if !a.gotMeans[0].EqualApprox(wantMean, 1e-12) {
		t.Fatalf("global mean %v want %v", a.gotMeans[0], wantMean)
	}
	for k := range wantCentral {
		if !a.gotCentral[0][k].EqualApprox(wantCentral[k], 1e-9) {
			t.Fatalf("global central order %d = %v want %v", k+2, a.gotCentral[0][k], wantCentral[k])
		}
	}
}

func TestMomentExchangeSkippedForMixedClients(t *testing.T) {
	d, _ := mat.NewFromRows([][]float64{{1}, {2}})
	a := &momentFake{fakeClient: newFakeClient("a", 1, 0), data: d}
	b := newFakeClient("b", 1, 0)
	if _, err := Run(Config{Rounds: 1}, []Client{a, b}); err != nil {
		t.Fatal(err)
	}
	if a.gotMeans != nil {
		t.Fatal("moment exchange ran with a non-moment client present")
	}
}

// auxFake implements AuxClient.
type auxFake struct {
	*fakeClient
	auxVal     float64
	downloaded float64
}

func (a *auxFake) UploadAux() *nn.Params {
	p := nn.NewParams()
	m := mat.New(1, 1)
	m.Set(0, 0, a.auxVal)
	p.Add("c", m)
	return p
}

func (a *auxFake) DownloadAux(g *nn.Params) error {
	a.downloaded = g.Get("c").At(0, 0)
	return nil
}

func TestAuxExchangeAverages(t *testing.T) {
	a := &auxFake{fakeClient: newFakeClient("a", 1, 0), auxVal: 2}
	b := &auxFake{fakeClient: newFakeClient("b", 1, 0), auxVal: 6}
	if _, err := Run(Config{Rounds: 1}, []Client{a, b}); err != nil {
		t.Fatal(err)
	}
	if a.downloaded != 4 || b.downloaded != 4 {
		t.Fatalf("aux aggregate = %v/%v want 4", a.downloaded, b.downloaded)
	}
}

func TestHistoryRecordsEveryRound(t *testing.T) {
	a := newFakeClient("a", 1, 0)
	res, err := Run(Config{Rounds: 5}, []Client{a})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) != 5 {
		t.Fatalf("history rows = %d", len(res.History))
	}
	for i, h := range res.History {
		if h.Round != i {
			t.Fatalf("round numbering wrong at %d", i)
		}
	}
}

func TestZeroSampleClientStillAggregates(t *testing.T) {
	a := newFakeClient("a", 0, 0) // no training nodes
	a.trainVal = 4
	b := newFakeClient("b", 0, 0)
	b.trainVal = 8
	res, err := Run(Config{Rounds: 1}, []Client{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.FinalParams.Get("w").At(0, 0); got != 6 {
		t.Fatalf("zero-sample aggregation = %v want 6", got)
	}
}
