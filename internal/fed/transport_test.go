package fed

import (
	"net"
	"strings"
	"sync"
	"testing"

	"fedomd/internal/mat"
	"fedomd/internal/moments"
	"fedomd/internal/nn"
)

// startServer runs RunDistributed over a loopback listener and serves the
// given clients from goroutines.
func startServer(t *testing.T, cfg Config, locals []Client) (*Result, error) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	var wg sync.WaitGroup
	serveErrs := make([]error, len(locals))
	for i, c := range locals {
		wg.Add(1)
		go func(i int, c Client) {
			defer wg.Done()
			serveErrs[i] = ServeClient(ln.Addr().String(), c)
		}(i, c)
	}
	res, err := RunDistributed(cfg, ln, len(locals))
	wg.Wait()
	for i, se := range serveErrs {
		if se != nil {
			t.Errorf("party %d serve error: %v", i, se)
		}
	}
	return res, err
}

func TestDistributedMatchesInProcess(t *testing.T) {
	mk := func() []Client {
		a := newFakeClient("a", 3, 0)
		a.trainVal = 1
		b := newFakeClient("b", 1, 0)
		b.trainVal = 5
		return []Client{a, b}
	}
	local, err := Run(Config{Rounds: 3, Sequential: true}, mk())
	if err != nil {
		t.Fatal(err)
	}
	dist, err := startServer(t, Config{Rounds: 3, Sequential: true}, mk())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := dist.FinalParams.Get("w").At(0, 0), local.FinalParams.Get("w").At(0, 0); got != want {
		t.Fatalf("distributed aggregate %v, in-process %v", got, want)
	}
	if dist.History[2].TestAcc != local.History[2].TestAcc {
		t.Fatal("distributed accuracy trajectory diverged")
	}
}

func TestDistributedMomentExchange(t *testing.T) {
	d1, _ := mat.NewFromRows([][]float64{{0}, {2}})
	d2, _ := mat.NewFromRows([][]float64{{10}, {12}, {14}, {16}})
	a := &momentFake{fakeClient: newFakeClient("a", 2, 0), data: d1}
	b := &momentFake{fakeClient: newFakeClient("b", 4, 0), data: d2}
	if _, err := startServer(t, Config{Rounds: 1}, []Client{a, b}); err != nil {
		t.Fatal(err)
	}
	// Global stats must have crossed the wire and match the pooled
	// reference.
	pooled, _ := mat.NewFromRows([][]float64{{0}, {2}, {10}, {12}, {14}, {16}})
	wantMean := mat.MeanRows(pooled)
	wantCentral := moments.CentralAround(pooled, wantMean, 5)
	if a.gotMeans == nil || !a.gotMeans[0].EqualApprox(wantMean, 1e-12) {
		t.Fatalf("global mean over the wire = %v want %v", a.gotMeans, wantMean)
	}
	for k := range wantCentral {
		if !b.gotCentral[0][k].EqualApprox(wantCentral[k], 1e-9) {
			t.Fatalf("order-%d moment mismatch over the wire", k+2)
		}
	}
}

func TestDistributedAuxExchange(t *testing.T) {
	a := &auxFake{fakeClient: newFakeClient("a", 1, 0), auxVal: 2}
	b := &auxFake{fakeClient: newFakeClient("b", 1, 0), auxVal: 6}
	if _, err := startServer(t, Config{Rounds: 1}, []Client{a, b}); err != nil {
		t.Fatal(err)
	}
	if a.downloaded != 4 || b.downloaded != 4 {
		t.Fatalf("aux aggregate over the wire = %v/%v want 4", a.downloaded, b.downloaded)
	}
}

func TestDistributedPropagatesClientError(t *testing.T) {
	a := newFakeClient("a", 1, 0)
	a.trainErr = errTest
	_, err := startServer(t, Config{Rounds: 1}, []Client{a})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("training error not propagated: %v", err)
	}
}

var errTest = errBoom{}

type errBoom struct{}

func (errBoom) Error() string { return "boom" }

func TestWireRoundTrips(t *testing.T) {
	m, _ := mat.NewFromRows([][]float64{{1, 2}, {3, 4}})
	if !fromWire(toWire(m)).Equal(m) {
		t.Fatal("dense wire round trip failed")
	}
	if fromWire(toWire(nil)).Rows() != 0 {
		t.Fatal("nil dense round trip failed")
	}
	p := nn.NewParams()
	p.Add("w0", m)
	p.Add("b0", mat.New(1, 2))
	q := paramsFromWire(paramsToWire(p))
	if q.Len() != 2 || !q.Get("w0").Equal(m) {
		t.Fatal("params wire round trip failed")
	}
	if paramsFromWire(nil) != nil {
		t.Fatal("nil params round trip failed")
	}
}

func TestRunDistributedValidation(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	if _, err := RunDistributed(Config{Rounds: 1}, ln, 0); err == nil {
		t.Fatal("0 parties accepted")
	}
}
