package fed

import (
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"fedomd/internal/telemetry"
)

// slowClient hangs in TrainLocal long enough to trip the coordinator's
// per-request read deadline.
type slowClient struct {
	*fakeClient
	delay time.Duration
}

func (s *slowClient) TrainLocal(round int) (float64, error) {
	time.Sleep(s.delay)
	return s.fakeClient.TrainLocal(round)
}

// TestReadDeadlineSurfacesNamedClientError covers the satellite fix for hung
// parties: without deadlines a stalled party blocks the synchronous round
// forever; with TransportOptions.ReadTimeout the coordinator fails fast with
// an error naming the offending client.
func TestReadDeadlineSurfacesNamedClientError(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// The serve loop exits with a write error once the coordinator
		// abandons the connection; that is expected here.
		_ = ServeClient(ln.Addr().String(), &slowClient{
			fakeClient: newFakeClient("laggard", 1, 0),
			delay:      2 * time.Second,
		})
	}()

	clients, err := AcceptClientsOpts(ln, 1, TransportOptions{ReadTimeout: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	_, err = Run(Config{Rounds: 1}, clients)
	// Unblock the party before waiting on it: the shutdown request lands in
	// its receive buffer and is served once the slow TrainLocal returns.
	clients[0].(*remoteClient).shutdown()
	if err == nil {
		t.Fatal("hung party did not surface an error")
	}
	if time.Since(start) > time.Second {
		t.Fatalf("deadline did not fire promptly, run took %v", time.Since(start))
	}
	if !strings.Contains(err.Error(), "laggard") {
		t.Fatalf("error does not name the hung client: %v", err)
	}
	var nerr net.Error
	if !errors.As(err, &nerr) || !nerr.Timeout() {
		t.Fatalf("deadline expiry is not a net timeout error: %v", err)
	}
	wg.Wait()
}

// TestDeadlinesHarmlessOnHealthyRun checks generous deadlines leave a normal
// distributed run untouched and that transport telemetry lands on both ends.
func TestDeadlinesHarmlessOnHealthyRun(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	coordRec := telemetry.NewAggregator()
	partyRec := telemetry.NewAggregator()
	var wg sync.WaitGroup
	for _, name := range []string{"a", "b"} {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			conn, err := net.Dial("tcp", ln.Addr().String())
			if err != nil {
				t.Error(err)
				return
			}
			defer conn.Close()
			if err := ServeClientConnOpts(conn, newFakeClient(name, 1, 0), ServeOptions{
				Recorder:     partyRec,
				WriteTimeout: 5 * time.Second,
			}); err != nil {
				t.Errorf("party %s: %v", name, err)
			}
		}(name)
	}
	res, err := RunDistributedOpts(Config{Rounds: 2}, ln, 2, TransportOptions{
		Recorder:     coordRec,
		ReadTimeout:  5 * time.Second,
		WriteTimeout: 5 * time.Second,
	})
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) != 2 {
		t.Fatalf("run truncated: %d rounds", len(res.History))
	}
	// Each round calls TrainLocal once per party: latency histogram on the
	// coordinator, handle histogram on the party, bytes counters on both.
	if s, ok := coordRec.Histogram("rpc/coord/latency_seconds/train_local"); !ok || s.Count != 4 {
		t.Fatalf("coordinator TrainLocal latency samples = %d (present=%v) want 4", s.Count, ok)
	}
	if s, ok := partyRec.Histogram("rpc/party/handle_seconds/train_local"); !ok || s.Count != 4 {
		t.Fatalf("party TrainLocal handle samples = %d (present=%v) want 4", s.Count, ok)
	}
	if coordRec.Counter("rpc/coord/bytes_tx/set_params") == 0 ||
		coordRec.Counter("rpc/coord/bytes_rx/get_params") == 0 {
		t.Fatal("coordinator byte counters missing")
	}
	if partyRec.Counter("rpc/party/bytes_rx/set_params") == 0 ||
		partyRec.Counter("rpc/party/bytes_tx/get_params") == 0 {
		t.Fatal("party byte counters missing")
	}
}
