package fed

import (
	"testing"
)

func TestClientFractionValidation(t *testing.T) {
	a := newFakeClient("a", 1, 0)
	if _, err := Run(Config{Rounds: 1, ClientFraction: -0.5}, []Client{a}); err == nil {
		t.Fatal("negative fraction accepted")
	}
	if _, err := Run(Config{Rounds: 1, ClientFraction: 1.5}, []Client{a}); err == nil {
		t.Fatal("fraction > 1 accepted")
	}
}

func TestClientFractionTrainsSubset(t *testing.T) {
	clients := make([]Client, 4)
	fakes := make([]*fakeClient, 4)
	for i := range clients {
		fakes[i] = newFakeClient(string(rune('a'+i)), 1, 0)
		clients[i] = fakes[i]
	}
	const rounds = 20
	if _, err := Run(Config{Rounds: rounds, ClientFraction: 0.5, SampleSeed: 7}, clients); err != nil {
		t.Fatal(err)
	}
	var total int32
	for _, f := range fakes {
		total += f.trainCalls
		// Every client should participate sometimes but not every round.
		if f.trainCalls == 0 {
			t.Fatalf("client %s never sampled over %d rounds", f.name, rounds)
		}
		if f.trainCalls == rounds {
			t.Fatalf("client %s sampled every round at fraction 0.5", f.name)
		}
	}
	if total != rounds*2 {
		t.Fatalf("total training calls = %d want %d", total, rounds*2)
	}
}

func TestClientFractionAggregatesOnlyActive(t *testing.T) {
	// With fraction 0.5 over 2 clients, exactly one trains per round; the
	// round's aggregate equals that client's weights.
	a := newFakeClient("a", 1, 0)
	a.trainVal = 2
	b := newFakeClient("b", 1, 0)
	b.trainVal = 8
	res, err := Run(Config{Rounds: 1, ClientFraction: 0.5, SampleSeed: 1}, []Client{a, b})
	if err != nil {
		t.Fatal(err)
	}
	got := res.FinalParams.Get("w").At(0, 0)
	if got != 2 && got != 8 {
		t.Fatalf("aggregate %v is not a single client's value", got)
	}
}

func TestClientFractionDeterministicUnderSeed(t *testing.T) {
	run := func() float64 {
		a := newFakeClient("a", 1, 0)
		a.trainVal = 2
		b := newFakeClient("b", 1, 0)
		b.trainVal = 8
		res, err := Run(Config{Rounds: 5, ClientFraction: 0.5, SampleSeed: 42}, []Client{a, b})
		if err != nil {
			t.Fatal(err)
		}
		return res.FinalParams.Get("w").At(0, 0)
	}
	if run() != run() {
		t.Fatal("sampling not deterministic under SampleSeed")
	}
}

func TestFullParticipationDefault(t *testing.T) {
	fakes := []*fakeClient{newFakeClient("a", 1, 0), newFakeClient("b", 1, 0)}
	if _, err := Run(Config{Rounds: 3}, []Client{fakes[0], fakes[1]}); err != nil {
		t.Fatal(err)
	}
	for _, f := range fakes {
		if f.trainCalls != 3 {
			t.Fatalf("client %s trained %d/3 rounds at full participation", f.name, f.trainCalls)
		}
	}
}
