package fed

import (
	"strings"
	"testing"
)

func TestClientFractionValidation(t *testing.T) {
	a := newFakeClient("a", 1, 0)
	if _, err := Run(Config{Rounds: 1, ClientFraction: -0.5}, []Client{a}); err == nil {
		t.Fatal("negative fraction accepted")
	}
	_, err := Run(Config{Rounds: 1, ClientFraction: 1.5}, []Client{a})
	if err == nil {
		t.Fatal("fraction > 1 accepted")
	}
	// The message must not claim (0, 1] is the whole domain: 0 is the
	// documented full-participation value and is accepted.
	if !strings.Contains(err.Error(), "0 (full participation)") {
		t.Fatalf("validation message does not document 0: %v", err)
	}
	if _, err := Run(Config{Rounds: 1, ClientFraction: 0}, []Client{a}); err != nil {
		t.Fatalf("fraction 0 (full participation) rejected: %v", err)
	}
}

func TestCeilFraction(t *testing.T) {
	cases := []struct {
		f    float64
		m    int
		want int
	}{
		{1.0 / 3.0, 3, 1},   // float product 0.999… snaps to 1, not ⌈⌉ → 1 anyway
		{1.0 / 3.0, 4, 2},   // 1.333 → 2
		{0.1, 30, 3},        // product 3.000…04: float noise must not yield 4
		{0.1, 10, 1},        // exactly M/10
		{0.3, 3, 1},         // 0.9 → 1
		{0.34, 3, 2},        // 1.02 → 2
		{0.5, 5, 3},         // 2.5 → 3
		{0.5, 4, 2},         // exact 2
		{1e-9, 1000, 1},     // tiny fractions clamp up to one client
		{1e-9, 3, 1},        // old +0.999999 trick truncated this to 0
		{0.999999999, 4, 4}, // near-1 fractions never exceed M
		{1, 7, 7},           // exact full participation
	}
	for _, c := range cases {
		if got := ceilFraction(c.f, c.m); got != c.want {
			t.Errorf("ceilFraction(%v, %d) = %d want %d", c.f, c.m, got, c.want)
		}
	}
}

func TestClientFractionTrainsSubset(t *testing.T) {
	clients := make([]Client, 4)
	fakes := make([]*fakeClient, 4)
	for i := range clients {
		fakes[i] = newFakeClient(string(rune('a'+i)), 1, 0)
		clients[i] = fakes[i]
	}
	const rounds = 20
	if _, err := Run(Config{Rounds: rounds, ClientFraction: 0.5, SampleSeed: 7}, clients); err != nil {
		t.Fatal(err)
	}
	var total int32
	for _, f := range fakes {
		total += f.trainCalls
		// Every client should participate sometimes but not every round.
		if f.trainCalls == 0 {
			t.Fatalf("client %s never sampled over %d rounds", f.name, rounds)
		}
		if f.trainCalls == rounds {
			t.Fatalf("client %s sampled every round at fraction 0.5", f.name)
		}
	}
	if total != rounds*2 {
		t.Fatalf("total training calls = %d want %d", total, rounds*2)
	}
}

func TestClientFractionAggregatesOnlyActive(t *testing.T) {
	// With fraction 0.5 over 2 clients, exactly one trains per round; the
	// round's aggregate equals that client's weights.
	a := newFakeClient("a", 1, 0)
	a.trainVal = 2
	b := newFakeClient("b", 1, 0)
	b.trainVal = 8
	res, err := Run(Config{Rounds: 1, ClientFraction: 0.5, SampleSeed: 1}, []Client{a, b})
	if err != nil {
		t.Fatal(err)
	}
	got := res.FinalParams.Get("w").At(0, 0)
	if got != 2 && got != 8 {
		t.Fatalf("aggregate %v is not a single client's value", got)
	}
}

func TestClientFractionDeterministicUnderSeed(t *testing.T) {
	run := func() float64 {
		a := newFakeClient("a", 1, 0)
		a.trainVal = 2
		b := newFakeClient("b", 1, 0)
		b.trainVal = 8
		res, err := Run(Config{Rounds: 5, ClientFraction: 0.5, SampleSeed: 42}, []Client{a, b})
		if err != nil {
			t.Fatal(err)
		}
		return res.FinalParams.Get("w").At(0, 0)
	}
	if run() != run() {
		t.Fatal("sampling not deterministic under SampleSeed")
	}
}

func TestFullParticipationDefault(t *testing.T) {
	fakes := []*fakeClient{newFakeClient("a", 1, 0), newFakeClient("b", 1, 0)}
	if _, err := Run(Config{Rounds: 3}, []Client{fakes[0], fakes[1]}); err != nil {
		t.Fatal(err)
	}
	for _, f := range fakes {
		if f.trainCalls != 3 {
			t.Fatalf("client %s trained %d/3 rounds at full participation", f.name, f.trainCalls)
		}
	}
}
