package fed

// async_test.go exercises the buffered asynchronous aggregation mode: config
// parsing and validation, staleness-discounted fold math, the policy
// interplay (benched rejection, eviction with codec-residual reset, quorum
// loss mid-buffer), observer/telemetry surfaces, and checkpoint/resume.

import (
	"bytes"
	"encoding/gob"
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"fedomd/internal/codec"
	"fedomd/internal/mat"
	"fedomd/internal/nn"
	"fedomd/internal/obs"
	"fedomd/internal/telemetry"
)

func TestParseAggregation(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want AggregationMode
	}{
		{"", AggSync}, {"sync", AggSync}, {"SYNC", AggSync},
		{"async", AggAsync}, {"Async", AggAsync}, {"buffered", AggAsync},
	} {
		got, err := ParseAggregation(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseAggregation(%q) = %v, %v want %v", tc.in, got, err, tc.want)
		}
	}
	if _, err := ParseAggregation("fedbuff"); err == nil {
		t.Fatal("unknown mode accepted")
	}
	if AggSync.String() != "sync" || AggAsync.String() != "async" {
		t.Fatalf("mode names = %q, %q", AggSync, AggAsync)
	}
}

func TestAsyncConfigValidation(t *testing.T) {
	clients := []Client{newFakeClient("a", 1, 0), newFakeClient("b", 1, 0)}
	for name, cfg := range map[string]Config{
		"bad mode":       {Rounds: 1, Aggregation: AggregationMode(7)},
		"buffer too big": {Rounds: 1, Aggregation: AggAsync, BufferK: 3},
		"negative k":     {Rounds: 1, Aggregation: AggAsync, BufferK: -1},
		"negative stale": {Rounds: 1, Aggregation: AggAsync, MaxStaleness: -1},
		"negative alpha": {Rounds: 1, Aggregation: AggAsync, StalenessAlpha: -0.5},
	} {
		if _, err := Run(cfg, clients); err == nil {
			t.Fatalf("%s: accepted", name)
		}
	}
}

// TestSyncIgnoresAsyncKnobs is the zero-value parity gate: a sync run with
// the async knobs set is identical to one without them — the knobs must not
// perturb the historical barriered path at all.
func TestSyncIgnoresAsyncKnobs(t *testing.T) {
	mk := func() []Client {
		a := newFakeClient("a", 3, 0)
		a.trainVal = 1
		b := newFakeClient("b", 1, 0)
		b.trainVal = 5
		return []Client{a, b}
	}
	plain, err := Run(Config{Rounds: 3}, mk())
	if err != nil {
		t.Fatal(err)
	}
	knobbed, err := Run(Config{Rounds: 3, Aggregation: AggSync, BufferK: 1,
		MaxStaleness: 4, StalenessAlpha: 2, BufferTimeout: time.Millisecond}, mk())
	if err != nil {
		t.Fatal(err)
	}
	if a, b := plain.FinalParams.Get("w").At(0, 0), knobbed.FinalParams.Get("w").At(0, 0); a != b {
		t.Fatalf("sync run perturbed by async knobs: %v vs %v", a, b)
	}
	if len(plain.History) != len(knobbed.History) {
		t.Fatalf("history lengths differ: %d vs %d", len(plain.History), len(knobbed.History))
	}
	for i := range plain.History {
		p, k := plain.History[i], knobbed.History[i]
		if p.TrainLoss != k.TrainLoss || p.ValAcc != k.ValAcc || p.TestAcc != k.TestAcc ||
			p.BytesUp != k.BytesUp || p.BytesDown != k.BytesDown {
			t.Fatalf("round %d stats differ: %+v vs %+v", i, p, k)
		}
	}
}

// learnFake trains toward half the received global plus a fixed bias, so the
// trajectory depends on every intermediate aggregate and a sync/async
// mismatch anywhere compounds into the final model.
type learnFake struct {
	*fakeClient
	bias float64
}

func (l *learnFake) TrainLocal(int) (float64, error) {
	w := l.params.Get("w")
	w.Set(0, 0, 0.5*l.received[len(l.received)-1]+l.bias)
	return l.loss, nil
}

// TestAsyncFullBufferMatchesSync drains the whole fleet every round
// (BufferK = M, instant clients): every fold happens at staleness 0, so the
// async trajectory must reproduce the synchronous FedAvg recursion exactly.
func TestAsyncFullBufferMatchesSync(t *testing.T) {
	mk := func() []Client {
		a := &learnFake{fakeClient: newFakeClient("a", 3, 0), bias: 1}
		b := &learnFake{fakeClient: newFakeClient("b", 1, 0), bias: 5}
		return []Client{a, b}
	}
	sync, err := Run(Config{Rounds: 4}, mk())
	if err != nil {
		t.Fatal(err)
	}
	async, err := Run(Config{Rounds: 4, Aggregation: AggAsync, BufferK: 2}, mk())
	if err != nil {
		t.Fatal(err)
	}
	s, a := sync.FinalParams.Get("w").At(0, 0), async.FinalParams.Get("w").At(0, 0)
	if s != a {
		t.Fatalf("async K=M final = %v, sync = %v", a, s)
	}
	if a == 0 {
		t.Fatal("trajectory degenerate: final model never moved")
	}
	// Same schedule again: the async loop must be run-to-run deterministic.
	again, err := Run(Config{Rounds: 4, Aggregation: AggAsync, BufferK: 2}, mk())
	if err != nil {
		t.Fatal(err)
	}
	if g := again.FinalParams.Get("w").At(0, 0); g != a {
		t.Fatalf("async rerun final = %v, first run = %v", g, a)
	}
}

// asyncHarness builds a runState + engine pair around canned clients for
// direct fold-level tests.
func asyncHarness(t *testing.T, cfg *Config, clients []Client, rec telemetry.Recorder) (*runState, *asyncEngine) {
	t.Helper()
	weights := make([]float64, len(clients))
	for i, c := range clients {
		weights[i] = float64(c.NumSamples())
	}
	rec = telemetry.Or(rec)
	st := newRunState(cfg, clients, weights, rec)
	var cs *codecState
	if cfg.Codec.Enabled() {
		cs = newCodecState(cfg.Codec, len(clients), rec)
	}
	return st, newAsyncEngine(cfg, st, cs, rec, nil, false)
}

func paramsAt(v float64) *nn.Params {
	p := nn.NewParams()
	m := mat.New(1, 1)
	m.Set(0, 0, v)
	p.Add("w", m)
	return p
}

// TestAsyncFoldStalenessWeights checks the discount math: with α = 1 and
// equal party weights, a staleness-1 update carries half the weight of a
// fresh one, so the aggregate is (p0 + p1/2) / 1.5.
func TestAsyncFoldStalenessWeights(t *testing.T) {
	cfg := &Config{Rounds: 10, Aggregation: AggAsync, BufferK: 2, StalenessAlpha: 1}
	clients := []Client{newFakeClient("a", 1, 0), newFakeClient("b", 1, 0)}
	_, eng := asyncHarness(t, cfg, clients, nil)
	eng.buffer = []*asyncUpdate{
		{party: 0, dispatch: 5, params: paramsAt(3), loss: 3, encBytes: -1},
		{party: 1, dispatch: 4, params: paramsAt(0), loss: 0, encBytes: -1},
	}
	out, err := eng.fold(5, paramsAt(0), &RoundStats{})
	if err != nil {
		t.Fatal(err)
	}
	want := (1.0*3 + 0.5*0) / 1.5
	if got := out.global.Get("w").At(0, 0); math.Abs(got-want) > 1e-12 {
		t.Fatalf("discounted fold = %v want %v", got, want)
	}
	if math.Abs(out.trainLoss-want) > 1e-12 {
		t.Fatalf("discounted loss = %v want %v", out.trainLoss, want)
	}
	if out.staleP99 != 1 {
		t.Fatalf("staleP99 = %v want 1", out.staleP99)
	}
	if eng.discount(0) != 1 || eng.discount(1) != 0.5 || eng.discount(3) != 0.25 {
		t.Fatalf("discount curve = %v %v %v", eng.discount(0), eng.discount(1), eng.discount(3))
	}
}

// TestAsyncFoldRejectsBenched: an update from a party benched while its job
// was in flight is rejected at fold time without a fresh strike, and the
// rejection is counted.
func TestAsyncFoldRejectsBenched(t *testing.T) {
	agg := telemetry.NewAggregator()
	cfg := &Config{Rounds: 10, Aggregation: AggAsync, BufferK: 2, Policy: Quarantine}
	clients := []Client{newFakeClient("a", 1, 0), newFakeClient("b", 1, 0)}
	st, eng := asyncHarness(t, cfg, clients, agg)
	st.benchedUntil[0] = 9 // benched through round 8
	eng.buffer = []*asyncUpdate{
		{party: 0, dispatch: 5, params: paramsAt(100), encBytes: -1},
		{party: 1, dispatch: 5, params: paramsAt(7), encBytes: -1},
	}
	out, err := eng.fold(5, paramsAt(0), &RoundStats{})
	if err != nil {
		t.Fatal(err)
	}
	if out.folded != 1 {
		t.Fatalf("folded = %d want 1", out.folded)
	}
	if got := out.global.Get("w").At(0, 0); got != 7 {
		t.Fatalf("benched update leaked into aggregate: %v", got)
	}
	if got := agg.Counter(MetricAsyncRejected); got != 1 {
		t.Fatalf("rejected counter = %d want 1", got)
	}
	if st.strikes[0] != 0 {
		t.Fatal("rejection must not add a strike on top of the bench")
	}
}

// TestAsyncFoldEvictsStaleAndResetsEncoder: an update past MaxStaleness is
// evicted as a policy failure, and because its encoded frame was never
// applied the party's uplink encoder is reset — the next frame must be
// bit-identical to a fresh encoder's.
func TestAsyncFoldEvictsStaleAndResetsEncoder(t *testing.T) {
	agg := telemetry.NewAggregator()
	cfg := &Config{Rounds: 40, Aggregation: AggAsync, BufferK: 2, Policy: DropRound,
		MaxStaleness: 2, Codec: codec.Options{Kind: codec.Quant, Bits: 8}}
	clients := []Client{newFakeClient("a", 1, 0), newFakeClient("b", 1, 0)}
	st, eng := asyncHarness(t, cfg, clients, agg)

	// Advance party 0's residuals with one lossy frame.
	p := nn.NewParams()
	m := mat.New(1, 5)
	for j := 0; j < 5; j++ {
		m.Set(0, j, 0.1*float64(j)+0.037)
	}
	p.Add("w", m)
	if _, err := eng.cs.up[0].EncodeParams(nil, p, nil); err != nil {
		t.Fatal(err)
	}

	eng.buffer = []*asyncUpdate{
		{party: 0, dispatch: 2, params: paramsAt(100), encoded: true, encBytes: 9},
		{party: 1, dispatch: 5, params: paramsAt(7), encBytes: -1},
	}
	out, err := eng.fold(5, paramsAt(0), &RoundStats{}) // staleness 3 > 2
	if err != nil {
		t.Fatal(err)
	}
	if out.folded != 1 || out.global.Get("w").At(0, 0) != 7 {
		t.Fatalf("evicted update leaked: folded=%d global=%v", out.folded, out.global.Get("w").At(0, 0))
	}
	if got := agg.Counter(MetricAsyncEvicted); got != 1 {
		t.Fatalf("evicted counter = %d want 1", got)
	}
	if st.failures["a"] != 1 {
		t.Fatalf("eviction must register a policy failure, got %v", st.failures)
	}
	// Residuals dropped: the post-eviction frame matches a fresh encoder's.
	after, err := eng.cs.up[0].EncodeParams(nil, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := codec.NewEncoder(cfg.Codec).EncodeParams(nil, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(after, fresh) {
		t.Fatal("post-eviction frame differs from a fresh encoder's: residuals survived the eviction")
	}
	// FailFast instead surfaces the eviction as a run-fatal ErrStaleUpdate.
	cfgFF := &Config{Rounds: 40, Aggregation: AggAsync, MaxStaleness: 2}
	_, engFF := asyncHarness(t, cfgFF, []Client{newFakeClient("a", 1, 0)}, nil)
	engFF.buffer = []*asyncUpdate{{party: 0, dispatch: 0, params: paramsAt(1), encBytes: -1}}
	if _, err := engFF.fold(5, paramsAt(0), &RoundStats{}); !errors.Is(err, ErrStaleUpdate) {
		t.Fatalf("FailFast eviction error = %v want ErrStaleUpdate", err)
	}
}

// TestAsyncFoldQuorumLoss: when every buffered update is screened out, the
// fold reports lost quorum and pushes the survivors back so a skipped round
// keeps them.
func TestAsyncFoldQuorumLoss(t *testing.T) {
	cfg := &Config{Rounds: 10, Aggregation: AggAsync, BufferK: 2, Policy: DropRound,
		MaxStaleness: 2, MinClients: 2}
	clients := []Client{newFakeClient("a", 1, 0), newFakeClient("b", 1, 0)}
	_, eng := asyncHarness(t, cfg, clients, nil)
	survivor := &asyncUpdate{party: 1, dispatch: 5, params: paramsAt(7), encBytes: -1}
	eng.buffer = []*asyncUpdate{
		{party: 0, dispatch: 1, params: paramsAt(3), encBytes: -1}, // stale, evicted
		survivor,
	}
	_, err := eng.fold(5, paramsAt(0), &RoundStats{})
	if !errors.Is(err, ErrQuorumLost) {
		t.Fatalf("fold error = %v want ErrQuorumLost", err)
	}
	if len(eng.buffer) != 1 || eng.buffer[0] != survivor {
		t.Fatalf("survivor not pushed back: buffer = %v", eng.buffer)
	}
}

// TestAsyncQuorumPolicyEndToEnd: a fleet whose trainers all fail loses
// quorum every round — QuorumAbort kills the run, QuorumSkip degrades it.
func TestAsyncQuorumPolicyEndToEnd(t *testing.T) {
	mk := func() []Client {
		a := newFakeClient("a", 1, 0)
		a.trainErr = errors.New("boom")
		b := newFakeClient("b", 1, 0)
		b.trainErr = errors.New("boom")
		return []Client{a, b}
	}
	cfg := Config{Rounds: 3, Aggregation: AggAsync, Policy: DropRound, BufferK: 2}
	if _, err := Run(cfg, mk()); !errors.Is(err, ErrQuorumLost) {
		t.Fatalf("QuorumAbort error = %v want ErrQuorumLost", err)
	}
	cfg.QuorumPolicy = QuorumSkip
	res, err := Run(cfg, mk())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) != 3 {
		t.Fatalf("skip policy history = %d rounds want 3", len(res.History))
	}
	for _, h := range res.History {
		if !h.Degraded {
			t.Fatalf("round %d not marked degraded", h.Round)
		}
	}
}

// slowFake is a fakeClient whose training sleeps, modeling a sustained
// straggler for the no-barrier loop.
type slowFake struct {
	*fakeClient
	sleep time.Duration
}

func (s *slowFake) TrainLocal(round int) (float64, error) {
	time.Sleep(s.sleep)
	return s.fakeClient.TrainLocal(round)
}

// obsSink captures every RoundObservation the runtime emits.
type obsSink struct {
	mu  sync.Mutex
	obs []obs.RoundObservation
}

func (s *obsSink) ObserveRound(_ obs.SpanContext, o obs.RoundObservation) {
	s.mu.Lock()
	s.obs = append(s.obs, o)
	s.mu.Unlock()
}

// TestAsyncLateArrivalFoldsWithStaleness: a straggler's update misses its
// dispatch round's buffer, survives in flight, and folds later with a
// positive applied staleness — no barrier ever waits for it.
func TestAsyncLateArrivalFoldsWithStaleness(t *testing.T) {
	// The fast parties pace the rounds (~3ms each) so the straggler's 10ms
	// jobs land mid-run rather than after it ends.
	a := &slowFake{fakeClient: newFakeClient("a", 1, 0), sleep: 3 * time.Millisecond}
	a.trainVal = 1
	b := &slowFake{fakeClient: newFakeClient("b", 1, 0), sleep: 3 * time.Millisecond}
	b.trainVal = 2
	slow := &slowFake{fakeClient: newFakeClient("c", 1, 0), sleep: 10 * time.Millisecond}
	slow.trainVal = 3
	sink := &obsSink{}
	agg := telemetry.NewAggregator()
	res, err := Run(Config{Rounds: 10, Aggregation: AggAsync, BufferK: 2, MaxStaleness: 100,
		Recorder: agg, Observer: sink}, []Client{a, b, slow})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) != 10 {
		t.Fatalf("history = %d rounds want 10", len(res.History))
	}
	maxStale := 0.0
	for _, o := range sink.obs {
		if !o.Async || o.BufferTarget != 2 {
			t.Fatalf("observation missing async surface: %+v", o)
		}
		if o.StalenessP99 > maxStale {
			maxStale = o.StalenessP99
		}
	}
	if maxStale < 1 {
		t.Fatalf("straggler never folded with positive staleness (max p99 = %v)", maxStale)
	}
	if agg.Counter(MetricAsyncFolded) == 0 || agg.Counter(MetricAsyncDispatched) == 0 {
		t.Fatal("async counters silent")
	}
	if s, ok := agg.Histogram(MetricAsyncStaleness); !ok || s.Max < 1 {
		t.Fatalf("staleness histogram = %+v, %v", s, ok)
	}
}

// TestAsyncBufferTimeoutStalls: with one party hopelessly slow and BufferK
// demanding everyone, the round deadline fires, the round folds short, and
// the stall is surfaced to telemetry and the observer.
func TestAsyncBufferTimeoutStalls(t *testing.T) {
	a := newFakeClient("a", 1, 0)
	slow := &slowFake{fakeClient: newFakeClient("b", 1, 0), sleep: 200 * time.Millisecond}
	sink := &obsSink{}
	agg := telemetry.NewAggregator()
	res, err := Run(Config{Rounds: 2, Aggregation: AggAsync, BufferK: 2,
		BufferTimeout: 20 * time.Millisecond, Recorder: agg, Observer: sink},
		[]Client{a, slow})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) != 2 {
		t.Fatalf("history = %d rounds want 2", len(res.History))
	}
	if agg.Counter(MetricAsyncStalls) == 0 {
		t.Fatal("stall counter silent")
	}
	stalled := false
	for _, o := range sink.obs {
		if o.BufferStalled && o.BufferFill < o.BufferTarget {
			stalled = true
		}
	}
	if !stalled {
		t.Fatal("no observation marked the stalled, under-filled round")
	}
}

// TestAsyncCheckpointResume: a run killed mid-flight and resumed from its
// last snapshot must land on the exact same final model and history tail as
// the uninterrupted run (BufferK = M keeps the schedule deterministic).
func TestAsyncCheckpointResume(t *testing.T) {
	mk := func() []Client {
		a := &learnFake{fakeClient: newFakeClient("a", 3, 0), bias: 1}
		b := &learnFake{fakeClient: newFakeClient("b", 1, 0), bias: 5}
		c := &learnFake{fakeClient: newFakeClient("c", 2, 0), bias: 2}
		return []Client{a, b, c}
	}
	full, err := Run(Config{Rounds: 6, Aggregation: AggAsync, BufferK: 3}, mk())
	if err != nil {
		t.Fatal(err)
	}

	var last *Checkpoint
	writer := func(ck *Checkpoint) error {
		// Round-trip through gob so the wire forms are what resume sees.
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(ck); err != nil {
			return err
		}
		var decoded Checkpoint
		if err := gob.NewDecoder(&buf).Decode(&decoded); err != nil {
			return err
		}
		last = &decoded
		return nil
	}
	if _, err := Run(Config{Rounds: 6, Aggregation: AggAsync, BufferK: 3,
		CheckpointEvery: 2, CheckpointWriter: writer}, mk()); err != nil {
		t.Fatal(err)
	}
	if last == nil || last.Round != 6 {
		t.Fatalf("expected a round-6 snapshot, got %+v", last)
	}
	// "Kill" at round 4 by resuming from the round-4 snapshot instead.
	var atFour *Checkpoint
	writer4 := func(ck *Checkpoint) error {
		if ck.Round == 4 {
			return writerCapture(ck, &atFour)
		}
		return nil
	}
	if _, err := Run(Config{Rounds: 6, Aggregation: AggAsync, BufferK: 3,
		CheckpointEvery: 2, CheckpointWriter: writer4}, mk()); err != nil {
		t.Fatal(err)
	}
	if atFour == nil {
		t.Fatal("round-4 snapshot never taken")
	}
	resumed, err := Run(Config{Rounds: 6, Aggregation: AggAsync, BufferK: 3,
		Resume: atFour}, mk())
	if err != nil {
		t.Fatal(err)
	}
	if f, r := full.FinalParams.Get("w").At(0, 0), resumed.FinalParams.Get("w").At(0, 0); f != r {
		t.Fatalf("resumed final = %v, uninterrupted = %v", r, f)
	}
	if len(resumed.History) != len(full.History) {
		t.Fatalf("resumed history = %d rounds, uninterrupted = %d", len(resumed.History), len(full.History))
	}
	for i := range full.History {
		if full.History[i].TrainLoss != resumed.History[i].TrainLoss {
			t.Fatalf("round %d loss: %v vs %v", i, full.History[i].TrainLoss, resumed.History[i].TrainLoss)
		}
	}
}

func writerCapture(ck *Checkpoint, dst **Checkpoint) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(ck); err != nil {
		return err
	}
	var decoded Checkpoint
	if err := gob.NewDecoder(&buf).Decode(&decoded); err != nil {
		return err
	}
	*dst = &decoded
	return nil
}

// TestAsyncBufferSnapshotRoundTrip: a non-empty in-flight buffer (params,
// statistics, aux, dispatch clocks) survives snapshot → gob → restore.
func TestAsyncBufferSnapshotRoundTrip(t *testing.T) {
	cfg := &Config{Rounds: 10, Aggregation: AggAsync}
	clients := []Client{newFakeClient("a", 1, 0), newFakeClient("b", 1, 0)}
	_, eng := asyncHarness(t, cfg, clients, nil)
	means := []*mat.Dense{mat.New(1, 2)}
	means[0].Set(0, 0, 0.5)
	means[0].Set(0, 1, -1.5)
	mom := mat.New(1, 2)
	mom.Set(0, 0, 0.25)
	eng.buffer = []*asyncUpdate{{
		party: 1, dispatch: 3, loss: 0.7, params: paramsAt(9),
		means: means, count: 4, moms: [][]*mat.Dense{{mom}},
		aux: paramsAt(2), trainSecs: 0.01, encBytes: -1,
	}}
	eng.lastDispatch[0] = 4
	eng.lastDispatch[1] = 3 // the buffered party's dispatch clock
	eng.stats.means = means
	eng.stats.aux = paramsAt(3)

	ck := &Checkpoint{Round: 5}
	eng.snapshotInto(ck)
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(ck); err != nil {
		t.Fatal(err)
	}
	var decoded Checkpoint
	if err := gob.NewDecoder(&buf).Decode(&decoded); err != nil {
		t.Fatal(err)
	}

	_, eng2 := asyncHarness(t, cfg, clients, nil)
	if err := eng2.restore(&decoded); err != nil {
		t.Fatal(err)
	}
	if len(eng2.buffer) != 1 {
		t.Fatalf("restored buffer = %d updates want 1", len(eng2.buffer))
	}
	u := eng2.buffer[0]
	if u.party != 1 || u.dispatch != 3 || u.loss != 0.7 || u.count != 4 || u.trainSecs != 0.01 {
		t.Fatalf("restored update = %+v", u)
	}
	if u.params.Get("w").At(0, 0) != 9 || u.aux.Get("w").At(0, 0) != 2 {
		t.Fatal("restored params/aux wrong")
	}
	if u.means[0].At(0, 1) != -1.5 || u.moms[0][0].At(0, 0) != 0.25 {
		t.Fatal("restored statistics wrong")
	}
	if u.pooled || u.encoded || u.encBytes != -1 {
		t.Fatalf("restored update must be raw and unpooled: %+v", u)
	}
	if eng2.lastDispatch[0] != 4 || eng2.lastDispatch[1] != 3 {
		t.Fatalf("restored dispatch clocks = %v", eng2.lastDispatch)
	}
	if eng2.stats.means[0].At(0, 0) != 0.5 || eng2.stats.aux.Get("w").At(0, 0) != 3 {
		t.Fatal("restored engine statistics wrong")
	}
}

// TestAsyncMomentAndAuxFold: a full-capability fleet under async mode keeps
// the statistics exchange and aux averaging alive — the bootstrap exchange
// seeds the global means, folds refresh them, and aux state circulates.
func TestAsyncMomentAndAuxFold(t *testing.T) {
	d1, _ := mat.NewFromRows([][]float64{{1}, {3}})
	d2, _ := mat.NewFromRows([][]float64{{5}, {7}})
	a := &momentFake{fakeClient: newFakeClient("a", 2, 0), data: d1}
	b := &momentFake{fakeClient: newFakeClient("b", 2, 0), data: d2}
	agg := telemetry.NewAggregator()
	res, err := Run(Config{Rounds: 3, Aggregation: AggAsync, BufferK: 2, Recorder: agg},
		[]Client{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) != 3 {
		t.Fatalf("history = %d want 3", len(res.History))
	}
	// The bootstrap exchange runs once; the async jobs carry statistics on
	// every later dispatch.
	if s, ok := agg.Histogram(MetricMomentsSeconds); !ok || s.Count != 1 {
		t.Fatalf("bootstrap moment exchange count = %+v, %v want 1", s, ok)
	}
	if got := a.gotMeans; got == nil {
		t.Fatal("party a never received global means")
	}
	if agg.Counter(MetricAsyncFolded) != 6 {
		t.Fatalf("folded counter = %d want 6", agg.Counter(MetricAsyncFolded))
	}
}
