package fed

// failure.go implements the runtime's fault tolerance: failure policies
// (fail-fast, drop-round, quarantine), per-call client timeouts, quorum
// guards, and the per-round/per-client failure accounting that Run threads
// through RoundStats and Result. The synchronous protocol of Algorithm 1 is
// preserved — a failed party is simply excluded from the round's cohort, and
// every aggregation (FedAvg weights, means, central moments, aux state)
// renormalizes over the survivors.

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"sync/atomic"
	"time"

	"fedomd/internal/mat"
	"fedomd/internal/nn"
	"fedomd/internal/telemetry"
)

// FailurePolicy selects how Run reacts when a client call errors, times out,
// or uploads non-finite values.
type FailurePolicy int

const (
	// FailFast aborts the run on the first client failure — the zero value,
	// byte-for-byte the historical behavior.
	FailFast FailurePolicy = iota
	// DropRound excludes a failing party from the remainder of the round:
	// its weights, moments, and aux state are left out of every aggregation,
	// which renormalizes over the survivors. The party is retried next round.
	DropRound
	// Quarantine is DropRound plus strike accounting: a party failing
	// MaxStrikes consecutive rounds is benched and probed for re-admission
	// after an exponentially growing cool-down.
	Quarantine
)

// String returns the flag-friendly name of the policy.
func (p FailurePolicy) String() string {
	switch p {
	case FailFast:
		return "failfast"
	case DropRound:
		return "droparound"
	case Quarantine:
		return "quarantine"
	}
	return fmt.Sprintf("FailurePolicy(%d)", int(p))
}

// ParseFailurePolicy maps a flag value to a policy, accepting hyphenated and
// underscored spellings case-insensitively ("drop-round", "FailFast", …).
func ParseFailurePolicy(s string) (FailurePolicy, error) {
	norm := strings.ToLower(strings.NewReplacer("-", "", "_", "").Replace(s))
	switch norm {
	case "failfast":
		return FailFast, nil
	case "droparound", "dropround", "drop":
		return DropRound, nil
	case "quarantine":
		return Quarantine, nil
	}
	return FailFast, fmt.Errorf("fed: unknown failure policy %q (want failfast, droparound, or quarantine)", s)
}

// QuorumPolicy selects what happens when fewer than MinClients parties
// survive a round.
type QuorumPolicy int

const (
	// QuorumAbort ends the run with an error wrapping ErrQuorumLost — the
	// zero value.
	QuorumAbort QuorumPolicy = iota
	// QuorumSkip abandons the round's aggregation (the previous global model
	// is kept) and proceeds to the next round.
	QuorumSkip
)

// Sentinel errors surfaced by the fault-tolerant runtime; match with
// errors.Is.
var (
	// ErrQuorumLost reports that fewer than Config.MinClients parties
	// survived a round under QuorumAbort.
	ErrQuorumLost = errors.New("quorum lost")
	// ErrClientTimeout reports a client call exceeding Config.ClientTimeout.
	ErrClientTimeout = errors.New("client call timed out")
	// ErrClientBusy reports a call to a client whose previous timed-out call
	// is still executing (the runtime never drives a client concurrently
	// with itself).
	ErrClientBusy = errors.New("client still busy with a timed-out call")
	// ErrNonFinite reports a client upload containing NaN or ±Inf values,
	// which would poison every model averaged with it.
	ErrNonFinite = errors.New("non-finite values in upload")
)

// runState carries the per-run fault-tolerance bookkeeping Run threads
// through its phases.
type runState struct {
	clients    []Client
	weights    []float64
	rec        telemetry.Recorder
	spec       *ModelSpec
	policy     FailurePolicy
	timeout    time.Duration
	minClients int
	maxStrikes int
	cooldown   int

	// busy guards the "never call a client concurrently with itself"
	// contract across timeouts: a timed-out call may still be executing
	// when the next phase (or round) reaches the same client.
	busy []atomic.Bool

	// Quarantine accounting, indexed by client.
	strikes      []int // consecutive failed rounds
	benchedUntil []int // first round the benched party is probed again
	benchCount   []int // times benched; drives the exponential cool-down

	failures map[string]int // total failures per client name, lazily built

	// Per-round scratch, reset by beginRound.
	dropped      []bool
	touched      []bool
	droppedCount int
	quarantined  int
	nonFinite    int // non-finite screens tripped this round (health feed)
}

func newRunState(cfg *Config, clients []Client, weights []float64, rec telemetry.Recorder) *runState {
	st := &runState{
		clients:      clients,
		weights:      weights,
		rec:          rec,
		spec:         cfg.Spec,
		policy:       cfg.Policy,
		timeout:      cfg.ClientTimeout,
		minClients:   cfg.MinClients,
		maxStrikes:   cfg.MaxStrikes,
		cooldown:     cfg.CooldownRounds,
		busy:         make([]atomic.Bool, len(clients)),
		strikes:      make([]int, len(clients)),
		benchedUntil: make([]int, len(clients)),
		benchCount:   make([]int, len(clients)),
		dropped:      make([]bool, len(clients)),
		touched:      make([]bool, len(clients)),
	}
	if st.minClients < 1 {
		st.minClients = 1
	}
	if st.maxStrikes < 1 {
		st.maxStrikes = 3
	}
	if st.cooldown < 1 {
		st.cooldown = 1
	}
	return st
}

func (st *runState) beginRound() {
	for i := range st.dropped {
		st.dropped[i] = false
		st.touched[i] = false
	}
	st.droppedCount = 0
	st.quarantined = 0
	st.nonFinite = 0
}

// benched reports whether client i sits out the given round (Quarantine
// cool-down).
func (st *runState) benched(i, round int) bool {
	return st.policy == Quarantine && round < st.benchedUntil[i]
}

// reachable returns the indices of the clients eligible to participate in
// the round, in client order.
func (st *runState) reachable(round int) []int {
	idx := make([]int, 0, len(st.clients))
	for i := range st.clients {
		if !st.benched(i, round) {
			idx = append(idx, i)
		}
	}
	return idx
}

// aliveOf filters idx down to the clients not dropped so far this round.
func (st *runState) aliveOf(idx []int) []int {
	out := idx[:0:0]
	for _, i := range idx {
		if !st.dropped[i] {
			out = append(out, i)
		}
	}
	return out
}

func (st *runState) clientsAt(idx []int) []Client {
	out := make([]Client, len(idx))
	for s, i := range idx {
		out[s] = st.clients[i]
	}
	return out
}

// call invokes f — a closure around one client operation — under the
// configured per-call timeout. With no timeout it is a direct call. The
// closure must write its results to invocation-local variables the caller
// reads only when call returns nil: on timeout the abandoned goroutine may
// still be executing, and the busy flag keeps the next phase from driving
// the same client concurrently.
func (st *runState) call(i int, f func() error) error {
	if !st.busy[i].CompareAndSwap(false, true) {
		return fmt.Errorf("fed: client %s: %w", st.clients[i].Name(), ErrClientBusy)
	}
	if st.timeout <= 0 {
		err := f()
		st.busy[i].Store(false)
		return err
	}
	done := make(chan error, 1)
	go func() {
		err := f()
		st.busy[i].Store(false)
		done <- err
	}()
	timer := time.NewTimer(st.timeout)
	defer timer.Stop()
	select {
	case err := <-done:
		return err
	case <-timer.C:
		return fmt.Errorf("fed: client %s: %w after %v", st.clients[i].Name(), ErrClientTimeout, st.timeout)
	}
}

// fail records a client failure. Under FailFast it returns err so the caller
// aborts the run; under the tolerant policies it drops the party from the
// remainder of the round, tallies the failure, and returns nil.
func (st *runState) fail(i int, err error) error {
	st.touched[i] = true
	if errors.Is(err, ErrNonFinite) {
		st.nonFinite++
		st.rec.Count(MetricNonFiniteScreened, 1)
	}
	if st.policy == FailFast {
		return err
	}
	if st.failures == nil {
		st.failures = make(map[string]int)
	}
	st.failures[st.clients[i].Name()]++
	if !st.dropped[i] {
		st.dropped[i] = true
		st.droppedCount++
		st.rec.Count(MetricClientDropped, 1)
	}
	return nil
}

// quorum returns nil when n survivors satisfy MinClients, else an error
// wrapping ErrQuorumLost.
func (st *runState) quorum(round, n int) error {
	if n >= st.minClients {
		return nil
	}
	return fmt.Errorf("fed: round %d: %d of %d clients survive, need %d: %w",
		round, n, len(st.clients), st.minClients, ErrQuorumLost)
}

// endRound finalizes the round's failure accounting: degraded-round
// telemetry, and — under Quarantine — strike updates and benching. A party
// completing a round cleanly is fully rehabilitated; a benched party whose
// re-admission probe fails is re-benched immediately with a doubled
// cool-down (its strikes were not cleared by the bench).
func (st *runState) endRound(round int, stats *RoundStats) {
	stats.Dropped = st.droppedCount
	if st.droppedCount > 0 {
		stats.Degraded = true
		st.rec.Count(MetricRoundDegraded, 1)
	}
	if st.policy != Quarantine {
		return
	}
	for i := range st.clients {
		if !st.touched[i] {
			continue // benched or unsampled: strikes unchanged
		}
		if !st.dropped[i] {
			st.strikes[i] = 0
			st.benchCount[i] = 0
			continue
		}
		st.strikes[i]++
		if st.strikes[i] < st.maxStrikes {
			continue
		}
		st.benchCount[i]++
		shift := st.benchCount[i] - 1
		if shift > 16 {
			shift = 16 // cool-downs beyond 2^16 rounds are indistinguishable
		}
		st.benchedUntil[i] = round + 1 + st.cooldown<<shift
		st.quarantined++
		stats.Quarantined++
		st.rec.Count(MetricClientQuarantined, 1)
	}
}

// evaluate returns the sample-weighted validation/test accuracy over the
// indexed clients. Evaluation stays lenient — a failing or timed-out party
// contributes zero counts rather than dropping from the round — but the
// per-call timeout still bounds how long a hung party can stall it.
func (st *runState) evaluate(idx []int, sequential bool) (valAcc, testAcc float64) {
	type counts struct{ vc, vt, tc, tt int }
	results := make([]counts, len(idx))
	sub := st.clientsAt(idx)
	forEachClient(sub, sequential, false, func(s int, c Client) error {
		var r counts
		if err := st.call(idx[s], func() error {
			r.vc, r.vt = c.EvalVal()
			r.tc, r.tt = c.EvalTest()
			return nil
		}); err == nil {
			results[s] = r
		}
		return nil
	})
	var vc, vt, tc, tt int
	for _, r := range results {
		vc += r.vc
		vt += r.vt
		tc += r.tc
		tt += r.tt
	}
	if vt > 0 {
		valAcc = float64(vc) / float64(vt)
	}
	if tt > 0 {
		testAcc = float64(tc) / float64(tt)
	}
	return valAcc, testAcc
}

// collapseErrs reduces forEachClient's indexed errors to the historical
// single error: the first failure in sequential mode, errors.Join otherwise.
func collapseErrs(errs []error, sequential bool) error {
	if sequential {
		for _, e := range errs {
			if e != nil {
				return e
			}
		}
		return nil
	}
	return errors.Join(errs...)
}

// finiteVec reports whether every element of v is finite.
func finiteVec(v *mat.Dense) bool {
	for _, x := range v.Data() {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
	}
	return true
}

// finiteVecs screens a slice of vectors (per-layer means).
func finiteVecs(vs []*mat.Dense) bool {
	for _, v := range vs {
		if !finiteVec(v) {
			return false
		}
	}
	return true
}

// finiteMoms screens [layer][order] central moments.
func finiteMoms(ms [][]*mat.Dense) bool {
	for _, layer := range ms {
		if !finiteVecs(layer) {
			return false
		}
	}
	return true
}

// finiteParams screens a parameter set.
func finiteParams(p *nn.Params) bool {
	for i := 0; i < p.Len(); i++ {
		if !finiteVec(p.At(i)) {
			return false
		}
	}
	return true
}
