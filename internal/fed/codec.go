package fed

// codec.go wires the internal/codec compression tiers into Run's in-process
// round loop. The simulation has no sockets, so the codec runs "in effigy":
// every upload is really encoded against the reference the client last
// received, byte-counted, and decoded server-side before aggregation — the
// accuracy effects of lossy tiers (and the byte accounting of all tiers)
// are exactly those of a wire deployment. Downlink broadcasts are encoded
// once per distinct reference state and charged per client.
//
// Distributed runs negotiate the same codec inside the transport instead
// (see transport.go); Run detects those proxies via wireCodecClient and
// leaves them alone so payloads are never encoded twice.

import (
	"fmt"
	"sync"
	"time"

	"fedomd/internal/codec"
	"fedomd/internal/nn"
	"fedomd/internal/obs"
	"fedomd/internal/telemetry"
)

// wireCodecClient is implemented by transport proxies that already applied a
// negotiated wire codec; Run's in-process codec layer skips them so payloads
// are not encoded twice.
type wireCodecClient interface{ wireCodecNegotiated() bool }

func transportCoded(c Client) bool {
	w, ok := c.(wireCodecClient)
	return ok && w.wireCodecNegotiated()
}

// codecState carries the per-run codec machinery: one uplink Encoder per
// client (each owns its error-feedback residuals), the per-client downlink
// reference (the global each client last successfully received), and a
// per-round memo so a broadcast of the same global against the same
// reference is encoded once, not once per client.
type codecState struct {
	opts codec.Options
	rec  telemetry.Recorder
	// mu guards the shared broadcast machinery (down encoder, memo, downRef
	// pointers read as memo keys) and the run-wide accounting totals. The
	// async engine drives broadcast and upload from per-party worker
	// goroutines; the per-party uplink encoders up[i] need no lock because a
	// party never has two jobs in flight.
	mu sync.Mutex
	// ratioKey is the per-tier gauge name ("codec/ratio/<tier>").
	ratioKey string
	up       []*codec.Encoder
	// down is the broadcast encoder. Downlink is always the lossless Delta
	// tier regardless of the uplink codec — the global must arrive exactly
	// or every client's reference (and the delta parity guarantee) drifts.
	down    *codec.Encoder
	downRef []*nn.Params
	// memo caches this round's encoded broadcast size per reference
	// parameter set (globals are immutable once aggregated, so pointer
	// identity is a sound key).
	memo map[*nn.Params]int64
	// rawTotal and encTotal accumulate uplink traffic over the run for
	// Ratio() and the per-tier gauge.
	rawTotal, encTotal int64
}

func newCodecState(opts codec.Options, n int, rec telemetry.Recorder) *codecState {
	cs := &codecState{
		opts:     opts,
		rec:      rec,
		ratioKey: codec.MetricRatioPrefix + "/" + opts.Name(),
		up:       make([]*codec.Encoder, n),
		down:     codec.NewEncoder(codec.Options{Kind: codec.Delta}),
		downRef:  make([]*nn.Params, n),
		memo:     make(map[*nn.Params]int64),
	}
	for i := range cs.up {
		cs.up[i] = codec.NewEncoder(opts)
	}
	return cs
}

// setTrace arms every per-client encoder (and the broadcast encoder) with
// the run's tracer; encode spans then parent under the tracer's active round
// context. A nil tracer leaves tracing off.
func (cs *codecState) setTrace(tr *obs.Tracer) {
	for _, e := range cs.up {
		e.SetTrace(tr, tr.Active)
	}
	cs.down.SetTrace(tr, tr.Active)
}

func (cs *codecState) beginRound() {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	for k := range cs.memo {
		delete(cs.memo, k)
	}
}

// accountUp records one upload's raw and encoded sizes — the direction the
// configured tier compresses, and the pair the ≥4× acceptance gate reads.
func (cs *codecState) accountUp(raw, enc int64) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	cs.rawTotal += raw
	cs.encTotal += enc
	if cs.rec.Enabled() {
		cs.rec.Count(codec.MetricBytesRaw, raw)
		cs.rec.Count(codec.MetricBytesEncoded, enc)
		if cs.encTotal > 0 {
			cs.rec.Gauge(cs.ratioKey, float64(cs.rawTotal)/float64(cs.encTotal)) //fedomdvet:ignore per-tier gauge; base key is the MetricRatioPrefix constant, suffix is the closed codec.Options.Name set
		}
	}
}

// accountDown records one broadcast's raw and encoded sizes (always the
// lossless Delta tier).
func (cs *codecState) accountDown(raw, enc int64) {
	if cs.rec.Enabled() {
		cs.rec.Count(codec.MetricBytesRawDown, raw)
		cs.rec.Count(codec.MetricBytesEncodedDown, enc)
	}
}

// broadcast returns the downlink bytes for delivering global to client i and
// advances the client's reference. Call it only after SetParams succeeded:
// a client that missed the broadcast keeps its old reference, and its next
// exchange is encoded against that (or absolutely, when it never had one).
func (cs *codecState) broadcast(i int, global *nn.Params) (int64, error) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	ref := cs.downRef[i]
	size, ok := cs.memo[ref]
	if !ok {
		t0 := time.Now()
		blob, err := cs.down.EncodeParams(nil, global, ref)
		if err != nil {
			return 0, fmt.Errorf("fed: codec broadcast encode: %w", err)
		}
		size = int64(len(blob))
		cs.memo[ref] = size
		if cs.rec.Enabled() {
			cs.rec.Count(codec.MetricEncodeNs, time.Since(t0).Nanoseconds())
		}
	}
	cs.downRef[i] = global
	cs.accountDown(int64(global.Bytes()), size)
	return size, nil
}

// upload encodes client i's parameters against its downlink reference,
// decodes them as the server would, and returns the decoded set (drawn from
// the mat buffer pool — release with putUpload after aggregation) plus the
// encoded byte count. Lossy tiers return values that differ from p exactly
// as they would over a real wire.
func (cs *codecState) upload(i int, p *nn.Params) (*nn.Params, int64, error) {
	ref := cs.downRef[i]
	t0 := time.Now()
	blob, err := cs.up[i].EncodeParams(nil, p, ref)
	if err != nil {
		return nil, 0, err
	}
	t1 := time.Now()
	dec, err := codec.DecodeParams(blob, ref)
	if err != nil {
		return nil, 0, err
	}
	if cs.rec.Enabled() {
		cs.rec.Count(codec.MetricEncodeNs, t1.Sub(t0).Nanoseconds())
		cs.rec.Count(codec.MetricDecodeNs, time.Since(t1).Nanoseconds())
	}
	cs.accountUp(int64(p.Bytes()), int64(len(blob)))
	return dec, int64(len(blob)), nil
}

// Ratio returns the run-wide upload compression ratio raw/encoded (0 before
// any traffic).
func (cs *codecState) Ratio() float64 {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if cs.encTotal == 0 {
		return 0
	}
	return float64(cs.rawTotal) / float64(cs.encTotal)
}
