package fed

import (
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

// roundTrainer's parameters depend on the round number, so every round
// produces a distinct aggregate and any resume misalignment shows up in the
// history comparison.
type roundTrainer struct {
	*fakeClient
	base float64
}

func (r *roundTrainer) TrainLocal(round int) (float64, error) {
	r.params.Get("w").Set(0, 0, r.base*float64(round+1))
	return 0.1 * r.base, nil
}

// checkpointFleet builds four deterministic parties with distinct weights so
// partial-participation cohorts matter.
func checkpointFleet() []Client {
	out := make([]Client, 4)
	for i := range out {
		f := newFakeClient([]string{"a", "b", "c", "d"}[i], i+1, 0)
		out[i] = &roundTrainer{fakeClient: f, base: float64(i + 1)}
	}
	return out
}

// checkpointConfig exercises partial participation so resume must also
// restore the sampler stream.
func checkpointConfig() Config {
	return Config{Rounds: 8, ClientFraction: 0.5, SampleSeed: 7, Sequential: true}
}

// stripTimes clears the wall-clock fields so histories from separate runs
// (or a run and its resume) compare on the protocol-determined values.
func stripTimes(h []RoundStats) []RoundStats {
	out := append([]RoundStats(nil), h...)
	for i := range out {
		out[i].Start, out[i].End = time.Time{}, time.Time{}
	}
	return out
}

func assertSameResult(t *testing.T, full, resumed *Result) {
	t.Helper()
	if !reflect.DeepEqual(stripTimes(full.History), stripTimes(resumed.History)) {
		t.Fatalf("history diverged:\nfull    %+v\nresumed %+v", full.History, resumed.History)
	}
	if full.BestValAcc != resumed.BestValAcc || full.TestAtBestVal != resumed.TestAtBestVal ||
		full.BestRound != resumed.BestRound {
		t.Fatalf("best tracking diverged: %v/%v/%d vs %v/%v/%d",
			full.BestValAcc, full.TestAtBestVal, full.BestRound,
			resumed.BestValAcc, resumed.TestAtBestVal, resumed.BestRound)
	}
	if full.TotalBytesUp != resumed.TotalBytesUp || full.TotalBytesDown != resumed.TotalBytesDown {
		t.Fatal("traffic totals diverged")
	}
	if d, err := full.FinalParams.L2Distance(resumed.FinalParams); err != nil || d != 0 {
		t.Fatalf("final params differ by %v (%v)", d, err)
	}
	if full.FinalValAcc != resumed.FinalValAcc || full.FinalTestAcc != resumed.FinalTestAcc {
		t.Fatal("final scoring diverged")
	}
}

func TestCheckpointResumeMatchesUninterrupted(t *testing.T) {
	full, err := Run(checkpointConfig(), checkpointFleet())
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted run: killed after round 3, having snapshotted at rounds
	// 2 and 4 is not possible (CheckpointEvery=4 fires once, after round 3).
	var snap *Checkpoint
	interrupted := checkpointConfig()
	interrupted.Rounds = 4
	interrupted.CheckpointEvery = 4
	interrupted.CheckpointWriter = func(ck *Checkpoint) error { snap = ck; return nil }
	if _, err := Run(interrupted, checkpointFleet()); err != nil {
		t.Fatal(err)
	}
	if snap == nil {
		t.Fatal("checkpoint writer never fired")
	}
	if snap.Round != 4 {
		t.Fatalf("snapshot round = %d want 4", snap.Round)
	}

	resumedCfg := checkpointConfig()
	resumedCfg.Resume = snap
	resumed, err := Run(resumedCfg, checkpointFleet())
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, full, resumed)
}

func TestCheckpointFileRoundTrip(t *testing.T) {
	full, err := Run(checkpointConfig(), checkpointFleet())
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "server.ckpt")
	interrupted := checkpointConfig()
	interrupted.Rounds = 6
	interrupted.CheckpointEvery = 2 // overwritten in place; the last one wins
	interrupted.CheckpointWriter = FileCheckpointer(path)
	if _, err := Run(interrupted, checkpointFleet()); err != nil {
		t.Fatal(err)
	}

	snap, err := LoadCheckpointFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Round != 6 {
		t.Fatalf("loaded snapshot round = %d want 6", snap.Round)
	}
	resumedCfg := checkpointConfig()
	resumedCfg.Resume = snap
	resumed, err := Run(resumedCfg, checkpointFleet())
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, full, resumed)
}

func TestResumeRejectsIncompatibleModel(t *testing.T) {
	var snap *Checkpoint
	cfg := Config{Rounds: 2, CheckpointEvery: 2,
		CheckpointWriter: func(ck *Checkpoint) error { snap = ck; return nil }}
	if _, err := Run(cfg, []Client{newFakeClient("a", 1, 0)}); err != nil {
		t.Fatal(err)
	}
	// A fleet with a different parameter schema must be refused.
	other := &momentFake{fakeClient: newFakeClient("a", 1, 0)}
	other.params.Add("extra", other.params.Get("w").Clone())
	if _, err := Run(Config{Rounds: 4, Resume: snap}, []Client{other}); err == nil {
		t.Fatal("incompatible resume accepted")
	}
}

func TestCheckpointCarriesQuarantineState(t *testing.T) {
	// Party a fails rounds 0-1 with MaxStrikes 2 → benched for round 2.
	// Resuming from the round-2 snapshot must keep it benched.
	mk := func() []Client {
		a := &flakyTrainer{fakeClient: newFakeClient("a", 1, 0), failRounds: map[int]bool{0: true, 1: true}}
		return []Client{a, newFakeClient("b", 1, 0)}
	}
	cfg := Config{Rounds: 5, Policy: Quarantine, MaxStrikes: 2, Sequential: true}
	full, err := Run(cfg, mk())
	if err != nil {
		t.Fatal(err)
	}

	var snap *Checkpoint
	interrupted := cfg
	interrupted.Rounds = 2
	interrupted.CheckpointEvery = 2
	interrupted.CheckpointWriter = func(ck *Checkpoint) error { snap = ck; return nil }
	if _, err := Run(interrupted, mk()); err != nil {
		t.Fatal(err)
	}
	if snap == nil || snap.Strikes["a"] != 2 || snap.BenchedUntil["a"] == 0 {
		t.Fatalf("quarantine state not checkpointed: %+v", snap)
	}

	fleet := mk()
	resumedCfg := cfg
	resumedCfg.Resume = snap
	resumed, err := Run(resumedCfg, fleet)
	if err != nil {
		t.Fatal(err)
	}
	a := fleet[0].(*flakyTrainer)
	// Rounds 0-1 already ran before the snapshot: the resumed run must bench
	// round 2 and probe at round 3, exactly like the uninterrupted schedule.
	if want := []int{3, 4}; !reflect.DeepEqual(a.calls, want) {
		t.Fatalf("resumed train rounds = %v want %v", a.calls, want)
	}
	if resumed.ClientFailures["a"] != full.ClientFailures["a"] {
		t.Fatalf("failure tally = %d want %d", resumed.ClientFailures["a"], full.ClientFailures["a"])
	}
}
