package fed

import (
	"bytes"
	"encoding/gob"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"fedomd/internal/mat"
	"fedomd/internal/nn"
)

// roundTrainer's parameters depend on the round number, so every round
// produces a distinct aggregate and any resume misalignment shows up in the
// history comparison.
type roundTrainer struct {
	*fakeClient
	base float64
}

func (r *roundTrainer) TrainLocal(round int) (float64, error) {
	r.params.Get("w").Set(0, 0, r.base*float64(round+1))
	return 0.1 * r.base, nil
}

// checkpointFleet builds four deterministic parties with distinct weights so
// partial-participation cohorts matter.
func checkpointFleet() []Client {
	out := make([]Client, 4)
	for i := range out {
		f := newFakeClient([]string{"a", "b", "c", "d"}[i], i+1, 0)
		out[i] = &roundTrainer{fakeClient: f, base: float64(i + 1)}
	}
	return out
}

// checkpointConfig exercises partial participation so resume must also
// restore the sampler stream.
func checkpointConfig() Config {
	return Config{Rounds: 8, ClientFraction: 0.5, SampleSeed: 7, Sequential: true}
}

// stripTimes clears the wall-clock fields so histories from separate runs
// (or a run and its resume) compare on the protocol-determined values.
func stripTimes(h []RoundStats) []RoundStats {
	out := append([]RoundStats(nil), h...)
	for i := range out {
		out[i].Start, out[i].End = time.Time{}, time.Time{}
	}
	return out
}

func assertSameResult(t *testing.T, full, resumed *Result) {
	t.Helper()
	if !reflect.DeepEqual(stripTimes(full.History), stripTimes(resumed.History)) {
		t.Fatalf("history diverged:\nfull    %+v\nresumed %+v", full.History, resumed.History)
	}
	if full.BestValAcc != resumed.BestValAcc || full.TestAtBestVal != resumed.TestAtBestVal ||
		full.BestRound != resumed.BestRound {
		t.Fatalf("best tracking diverged: %v/%v/%d vs %v/%v/%d",
			full.BestValAcc, full.TestAtBestVal, full.BestRound,
			resumed.BestValAcc, resumed.TestAtBestVal, resumed.BestRound)
	}
	if full.TotalBytesUp != resumed.TotalBytesUp || full.TotalBytesDown != resumed.TotalBytesDown {
		t.Fatal("traffic totals diverged")
	}
	if d, err := full.FinalParams.L2Distance(resumed.FinalParams); err != nil || d != 0 {
		t.Fatalf("final params differ by %v (%v)", d, err)
	}
	if full.FinalValAcc != resumed.FinalValAcc || full.FinalTestAcc != resumed.FinalTestAcc {
		t.Fatal("final scoring diverged")
	}
}

func TestCheckpointResumeMatchesUninterrupted(t *testing.T) {
	full, err := Run(checkpointConfig(), checkpointFleet())
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted run: killed after round 3, having snapshotted at rounds
	// 2 and 4 is not possible (CheckpointEvery=4 fires once, after round 3).
	var snap *Checkpoint
	interrupted := checkpointConfig()
	interrupted.Rounds = 4
	interrupted.CheckpointEvery = 4
	interrupted.CheckpointWriter = func(ck *Checkpoint) error { snap = ck; return nil }
	if _, err := Run(interrupted, checkpointFleet()); err != nil {
		t.Fatal(err)
	}
	if snap == nil {
		t.Fatal("checkpoint writer never fired")
	}
	if snap.Round != 4 {
		t.Fatalf("snapshot round = %d want 4", snap.Round)
	}

	resumedCfg := checkpointConfig()
	resumedCfg.Resume = snap
	resumed, err := Run(resumedCfg, checkpointFleet())
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, full, resumed)
}

func TestCheckpointFileRoundTrip(t *testing.T) {
	full, err := Run(checkpointConfig(), checkpointFleet())
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "server.ckpt")
	interrupted := checkpointConfig()
	interrupted.Rounds = 6
	interrupted.CheckpointEvery = 2 // overwritten in place; the last one wins
	interrupted.CheckpointWriter = FileCheckpointer(path)
	if _, err := Run(interrupted, checkpointFleet()); err != nil {
		t.Fatal(err)
	}

	snap, err := LoadCheckpointFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Round != 6 {
		t.Fatalf("loaded snapshot round = %d want 6", snap.Round)
	}
	resumedCfg := checkpointConfig()
	resumedCfg.Resume = snap
	resumed, err := Run(resumedCfg, checkpointFleet())
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, full, resumed)
}

func TestResumeRejectsIncompatibleModel(t *testing.T) {
	var snap *Checkpoint
	cfg := Config{Rounds: 2, CheckpointEvery: 2,
		CheckpointWriter: func(ck *Checkpoint) error { snap = ck; return nil }}
	if _, err := Run(cfg, []Client{newFakeClient("a", 1, 0)}); err != nil {
		t.Fatal(err)
	}
	// A fleet with a different parameter schema must be refused.
	other := &momentFake{fakeClient: newFakeClient("a", 1, 0)}
	other.params.Add("extra", other.params.Get("w").Clone())
	if _, err := Run(Config{Rounds: 4, Resume: snap}, []Client{other}); err == nil {
		t.Fatal("incompatible resume accepted")
	}
}

func TestCheckpointCarriesQuarantineState(t *testing.T) {
	// Party a fails rounds 0-1 with MaxStrikes 2 → benched for round 2.
	// Resuming from the round-2 snapshot must keep it benched.
	mk := func() []Client {
		a := &flakyTrainer{fakeClient: newFakeClient("a", 1, 0), failRounds: map[int]bool{0: true, 1: true}}
		return []Client{a, newFakeClient("b", 1, 0)}
	}
	cfg := Config{Rounds: 5, Policy: Quarantine, MaxStrikes: 2, Sequential: true}
	full, err := Run(cfg, mk())
	if err != nil {
		t.Fatal(err)
	}

	var snap *Checkpoint
	interrupted := cfg
	interrupted.Rounds = 2
	interrupted.CheckpointEvery = 2
	interrupted.CheckpointWriter = func(ck *Checkpoint) error { snap = ck; return nil }
	if _, err := Run(interrupted, mk()); err != nil {
		t.Fatal(err)
	}
	if snap == nil || snap.Strikes["a"] != 2 || snap.BenchedUntil["a"] == 0 {
		t.Fatalf("quarantine state not checkpointed: %+v", snap)
	}

	fleet := mk()
	resumedCfg := cfg
	resumedCfg.Resume = snap
	resumed, err := Run(resumedCfg, fleet)
	if err != nil {
		t.Fatal(err)
	}
	a := fleet[0].(*flakyTrainer)
	// Rounds 0-1 already ran before the snapshot: the resumed run must bench
	// round 2 and probe at round 3, exactly like the uninterrupted schedule.
	if want := []int{3, 4}; !reflect.DeepEqual(a.calls, want) {
		t.Fatalf("resumed train rounds = %v want %v", a.calls, want)
	}
	if resumed.ClientFailures["a"] != full.ClientFailures["a"] {
		t.Fatalf("failure tally = %d want %d", resumed.ClientFailures["a"], full.ClientFailures["a"])
	}
}

// legacyCheckpoint mirrors the on-disk snapshot format from before the
// ModelSpec header existed: every Checkpoint field except Spec. Encoding it
// and decoding into the current struct is exactly what loading an old
// checkpoint file does.
type legacyCheckpoint struct {
	Round          int
	SamplerDraws   int
	Global         *wireParams
	History        []RoundStats
	BestValAcc     float64
	TestAtBestVal  float64
	BestRound      int
	BadRounds      int
	TotalBytesUp   int64
	TotalBytesDown int64
	Failures       map[string]int
	Strikes        map[string]int
	BenchedUntil   map[string]int
	BenchCount     map[string]int
	AsyncBuffer    []AsyncBufferedUpdate
	AsyncDispatch  map[string]int
	AsyncMeans     []wireDense
	AsyncCentral   [][]wireDense
	AsyncAux       *wireParams
}

func specTestParams() *nn.Params {
	p := nn.NewParams()
	p.Add("w", mat.NewFromData(2, 2, []float64{1, 2, 3, 4}))
	p.Add("b", mat.NewFromData(1, 2, []float64{-0.5, 0.25}))
	return p
}

// TestCheckpointPreSpecHeaderCompat pins backward compatibility: snapshots
// written before the model-config header existed still load, with Spec nil
// and every other field intact.
func TestCheckpointPreSpecHeaderCompat(t *testing.T) {
	legacy := legacyCheckpoint{
		Round:      5,
		Global:     paramsToWire(specTestParams()),
		BestValAcc: 0.75,
		Failures:   map[string]int{"party-a": 2},
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&legacy); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "legacy.ckpt")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	ck, err := LoadCheckpointFile(path)
	if err != nil {
		t.Fatalf("pre-header checkpoint refused: %v", err)
	}
	if ck.Spec != nil {
		t.Fatalf("pre-header checkpoint decoded with non-nil Spec %+v", ck.Spec)
	}
	if ck.Round != 5 || ck.BestValAcc != 0.75 || ck.Failures["party-a"] != 2 {
		t.Fatalf("legacy fields corrupted: %+v", ck)
	}
	got, err := ck.GlobalParams()
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Compatible(specTestParams()); err != nil {
		t.Fatalf("legacy global params unusable: %v", err)
	}
	if got.Get("w").At(1, 1) != 4 {
		t.Fatalf("legacy global params corrupted: %v", got.Get("w").Data())
	}
}

// TestCheckpointSpecRoundTrip pins the header through the file writer and
// loader, including GlobalParams on a header-only model checkpoint.
func TestCheckpointSpecRoundTrip(t *testing.T) {
	spec := &ModelSpec{
		SpecVersion: SpecVersion, Model: "fedomd",
		Features: 6, Classes: 3, Hidden: 8, HiddenLayers: 2,
		Dropout: 0.5, SpectralBound: true,
		Dataset: "cora-like", Divisor: 4, DataSeed: 42,
	}
	ck := NewModelCheckpoint(3, specTestParams(), spec)
	path := filepath.Join(t.TempDir(), "model.ckpt")
	if err := FileCheckpointer(path)(ck); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCheckpointFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Spec, spec) {
		t.Fatalf("spec did not round-trip:\nwrote %+v\nread  %+v", spec, got.Spec)
	}
	p, err := got.GlobalParams()
	if err != nil {
		t.Fatal(err)
	}
	if p.Get("b").At(0, 1) != 0.25 {
		t.Fatalf("model params corrupted: %v", p.Get("b").Data())
	}
}

// TestRunStampsSpecOntoCheckpoints covers the Config→snapshot plumbing.
func TestRunStampsSpecOntoCheckpoints(t *testing.T) {
	var snap *Checkpoint
	cfg := Config{Rounds: 2, CheckpointEvery: 2,
		Spec:             &ModelSpec{SpecVersion: SpecVersion, Model: "fedomd", Hidden: 16},
		CheckpointWriter: func(ck *Checkpoint) error { snap = ck; return nil }}
	if _, err := Run(cfg, []Client{newFakeClient("a", 1, 0)}); err != nil {
		t.Fatal(err)
	}
	if snap == nil || snap.Spec == nil {
		t.Fatal("run with Config.Spec wrote a spec-less checkpoint")
	}
	if snap.Spec.Model != "fedomd" || snap.Spec.Hidden != 16 {
		t.Fatalf("wrong spec on checkpoint: %+v", snap.Spec)
	}
}
