package fed

import (
	"testing"

	"fedomd/internal/mat"
)

// The byte-accounting tests pin RoundStats.BytesUp/BytesDown and the Result
// totals to analytically computed payload sizes, so the comms numbers
// telemetry reports (and the paper's Figure 5 cost axis) are trustworthy.

func TestByteAccountingPlainClients(t *testing.T) {
	// Two plain clients, one 1×1 parameter ("w", 8 bytes). Per round:
	// broadcast M·8 down, weight upload M·8 up; nothing else moves.
	const rounds, m, paramBytes = 3, 2, 8
	a := newFakeClient("a", 1, 0)
	b := newFakeClient("b", 2, 0)
	res, err := Run(Config{Rounds: rounds}, []Client{a, b})
	if err != nil {
		t.Fatal(err)
	}
	wantUp, wantDown := int64(m*paramBytes), int64(m*paramBytes)
	for _, h := range res.History {
		if h.BytesUp != wantUp || h.BytesDown != wantDown {
			t.Fatalf("round %d bytes = %d up / %d down, want %d / %d",
				h.Round, h.BytesUp, h.BytesDown, wantUp, wantDown)
		}
	}
	if res.TotalBytesUp != rounds*wantUp || res.TotalBytesDown != rounds*wantDown {
		t.Fatalf("totals = %d up / %d down, want %d / %d",
			res.TotalBytesUp, res.TotalBytesDown, rounds*wantUp, rounds*wantDown)
	}
}

func TestByteAccountingMomentClients(t *testing.T) {
	// Two moment clients over 1-feature data, 1 hidden layer, orders 2..5.
	// Per client per round, on top of the 8-byte weight up/down:
	//   means upload:        1×1 mean (8) + count (8)      = 16 up
	//   global means down:   1×1                           =  8 down
	//   moments upload:      4 orders × 1×1 (32) + count   = 40 up
	//   global central down: 4 × 1×1                       = 32 down
	d1, _ := mat.NewFromRows([][]float64{{0}, {2}})
	d2, _ := mat.NewFromRows([][]float64{{10}, {12}})
	a := &momentFake{fakeClient: newFakeClient("a", 2, 0), data: d1}
	b := &momentFake{fakeClient: newFakeClient("b", 2, 0), data: d2}
	res, err := Run(Config{Rounds: 1}, []Client{a, b})
	if err != nil {
		t.Fatal(err)
	}
	const m = 2
	wantUp := int64(m * (8 + 16 + 40))
	wantDown := int64(m * (8 + 8 + 32))
	h := res.History[0]
	if h.BytesUp != wantUp || h.BytesDown != wantDown {
		t.Fatalf("moment round bytes = %d up / %d down, want %d / %d",
			h.BytesUp, h.BytesDown, wantUp, wantDown)
	}
	if res.TotalBytesUp != wantUp || res.TotalBytesDown != wantDown {
		t.Fatalf("totals = %d / %d, want %d / %d",
			res.TotalBytesUp, res.TotalBytesDown, wantUp, wantDown)
	}
}

func TestByteAccountingAuxClients(t *testing.T) {
	// Two aux clients: each uploads a 1×1 control variate (8 bytes) and
	// downloads the 8-byte aggregate, on top of the weight exchange.
	a := &auxFake{fakeClient: newFakeClient("a", 1, 0), auxVal: 2}
	b := &auxFake{fakeClient: newFakeClient("b", 1, 0), auxVal: 6}
	res, err := Run(Config{Rounds: 1}, []Client{a, b})
	if err != nil {
		t.Fatal(err)
	}
	const m = 2
	wantUp, wantDown := int64(m*(8+8)), int64(m*(8+8))
	h := res.History[0]
	if h.BytesUp != wantUp || h.BytesDown != wantDown {
		t.Fatalf("aux round bytes = %d up / %d down, want %d / %d",
			h.BytesUp, h.BytesDown, wantUp, wantDown)
	}
}
