package fed

import (
	"bytes"
	"encoding/json"
	"math"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"fedomd/internal/codec"
	"fedomd/internal/obs"
	"fedomd/internal/telemetry"
)

// slowTrainer wraps a fakeClient with an artificial training delay — the
// in-process stand-in for a straggling party (package fed cannot import
// internal/chaos without a cycle).
type slowTrainer struct {
	*fakeClient
	delay time.Duration
}

func (s *slowTrainer) TrainLocal(round int) (float64, error) {
	time.Sleep(s.delay)
	return s.fakeClient.TrainLocal(round)
}

// spanRec is one decoded trace line (span or event); IDs are hex strings.
type spanRec struct {
	Type   string         `json:"type"`
	Name   string         `json:"name"`
	Trace  string         `json:"trace"`
	Span   string         `json:"span"`
	Parent string         `json:"parent"`
	Attrs  map[string]any `json:"attrs"`
}

func decodeTrace(t *testing.T, buf *bytes.Buffer) []spanRec {
	t.Helper()
	var out []spanRec
	for _, line := range bytes.Split(buf.Bytes(), []byte("\n")) {
		if len(line) == 0 {
			continue
		}
		var r spanRec
		if err := json.Unmarshal(line, &r); err != nil {
			t.Fatalf("malformed trace line %q: %v", line, err)
		}
		out = append(out, r)
	}
	return out
}

// hasAncestor walks parent links from id looking for a span named want.
func hasAncestor(byID map[string]spanRec, id string, want string) bool {
	for depth := 0; depth < 64; depth++ {
		r, ok := byID[id]
		if !ok {
			return false
		}
		if r.Name == want {
			return true
		}
		if r.Parent == "" {
			return false
		}
		id = r.Parent
	}
	return false
}

// TestDistributedTraceTree runs a full distributed round trip with one
// shared tracer on both ends of the wire and reconstructs the span tree:
// every party-side train handling span and every wire-codec encode span
// must carry a coordinator round span as an ancestor — the cross-process
// causal link the trace context in the request frame exists to provide.
func TestDistributedTraceTree(t *testing.T) {
	var mu sync.Mutex
	var buf bytes.Buffer
	jl := telemetry.NewJSONL(lockedWriter{&mu, &buf})
	tr := obs.NewTracer(jl)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	a := newFakeClient("a", 3, 0)
	a.trainVal = 1
	b := newFakeClient("b", 1, 0)
	b.trainVal = 5
	locals := []Client{a, b}
	var wg sync.WaitGroup
	for _, c := range locals {
		wg.Add(1)
		go func(c Client) {
			defer wg.Done()
			if err := ServeClientOpts(ln.Addr().String(), c, ServeOptions{Tracer: tr}); err != nil {
				t.Errorf("serve %s: %v", c.Name(), err)
			}
		}(c)
	}
	cfg := Config{
		Rounds:     2,
		Sequential: true,
		Tracer:     tr,
		Codec:      codec.Options{Kind: codec.Delta},
	}
	res, err := RunDistributed(cfg, ln, len(locals))
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if err := jl.Flush(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	data := append([]byte(nil), buf.Bytes()...)
	mu.Unlock()
	recs := decodeTrace(t, bytes.NewBuffer(data))

	byID := map[string]spanRec{}
	var runSpans, roundSpans int
	var runTrace string
	for _, r := range recs {
		if r.Type != "span" {
			continue
		}
		byID[r.Span] = r
		switch r.Name {
		case obs.SpanRun:
			runSpans++
			runTrace = r.Trace
		case obs.SpanRound:
			roundSpans++
		}
	}
	if runSpans != 1 {
		t.Fatalf("got %d fed/run spans, want exactly 1", runSpans)
	}
	if roundSpans != cfg.Rounds {
		t.Fatalf("got %d fed/round spans, want %d", roundSpans, cfg.Rounds)
	}
	if res.RunID == "" {
		t.Fatal("distributed result missing its run ID")
	}

	var trainHandles, roundEncodes int
	for _, r := range byID {
		isTrainHandle := r.Name == obs.SpanPartyHandle && r.Attrs["op"] == "train_local"
		if !isTrainHandle && r.Name != obs.SpanEncode {
			continue
		}
		// Everything anchors in the run's trace: the bootstrap parameter
		// fetch under fed/run, round-era work under a fed/round span.
		if r.Trace != runTrace {
			t.Errorf("%s span %s on trace %s, run trace is %s", r.Name, r.Span, r.Trace, runTrace)
		}
		if !hasAncestor(byID, r.Span, obs.SpanRun) {
			t.Errorf("%s span %s (attrs %v) has no fed/run ancestor", r.Name, r.Span, r.Attrs)
		}
		if isTrainHandle {
			trainHandles++
			if !hasAncestor(byID, r.Span, obs.SpanRound) {
				t.Errorf("train handling span %s has no fed/round ancestor", r.Span)
			}
		} else if hasAncestor(byID, r.Span, obs.SpanRound) {
			roundEncodes++
		}
	}
	// Two parties x two rounds: one train handling span each, and at least
	// as many round-anchored encode spans (party uploads ride the
	// negotiated wire codec).
	if want := len(locals) * cfg.Rounds; trainHandles != want {
		t.Fatalf("reconstructed %d train handling spans, want %d", trainHandles, want)
	}
	if roundEncodes < len(locals)*cfg.Rounds {
		t.Fatalf("reconstructed only %d round-anchored codec/encode spans", roundEncodes)
	}
}

// lockedWriter serialises buffer access between the party goroutines'
// flush-on-shutdown and the test's final read.
type lockedWriter struct {
	mu *sync.Mutex
	w  *bytes.Buffer
}

func (l lockedWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(p)
}

// TestHealthMonitorsFireDuringRun drives a run with one NaN-poisoned party
// and one straggler: the non-finite and straggler-skew monitors must both
// fire, with events retained for the final report AND emitted into the
// trace stream.
func TestHealthMonitorsFireDuringRun(t *testing.T) {
	var buf bytes.Buffer
	jl := telemetry.NewJSONL(&buf)
	tr := obs.NewTracer(jl)
	health := obs.NewHealth(obs.HealthConfig{}, tr, nil)

	nan := newFakeClient("nan", 2, 0)
	nan.trainVal = math.NaN()
	slow := &slowTrainer{fakeClient: newFakeClient("slow", 2, 0), delay: 30 * time.Millisecond}
	slow.trainVal = 2
	clients := []Client{
		newFakeClient("a", 2, 0),
		newFakeClient("b", 2, 0),
		newFakeClient("c", 2, 0),
		nan,
		slow,
	}
	for _, c := range clients {
		if f, ok := c.(*fakeClient); ok && f.trainVal == 0 {
			f.trainVal = 1
		}
	}

	res, err := Run(Config{Rounds: 2, Policy: DropRound, Tracer: tr, Observer: health}, clients)
	if err != nil {
		t.Fatal(err)
	}
	if res.ClientFailures["nan"] == 0 {
		t.Fatal("NaN party never failed a round — screen did not trip")
	}

	fired := map[string]bool{}
	for _, ev := range health.Events() {
		fired[ev.Rule] = true
	}
	if !fired[obs.RuleNonFinite] {
		t.Errorf("non-finite monitor never fired: %v", health.Events())
	}
	if !fired[obs.RuleStragglerSkew] {
		t.Errorf("straggler-skew monitor never fired: %v", health.Events())
	}

	if err := jl.Flush(); err != nil {
		t.Fatal(err)
	}
	stream := buf.String()
	if !strings.Contains(stream, `"name":"`+obs.MetricHealthEvent+`"`) {
		t.Fatal("health events missing from the trace stream")
	}
	if !strings.Contains(stream, obs.RuleNonFinite) || !strings.Contains(stream, obs.RuleStragglerSkew) {
		t.Fatal("trace stream missing the fired rule names")
	}
}

// TestRunTimestampsAndID covers the wall-clock satellite: Result and every
// RoundStats carry ordered Start/End bounds, and the run ID is minted (or
// passed through) and 16 hex digits.
func TestRunTimestampsAndID(t *testing.T) {
	a := newFakeClient("a", 2, 0)
	a.trainVal = 1
	res, err := Run(Config{Rounds: 3, Sequential: true}, []Client{a})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.RunID) != 16 {
		t.Fatalf("run ID %q is not 16 hex digits", res.RunID)
	}
	if res.Start.IsZero() || res.End.IsZero() || res.End.Before(res.Start) {
		t.Fatalf("run bounds not ordered: %v .. %v", res.Start, res.End)
	}
	if len(res.History) != 3 {
		t.Fatalf("got %d rounds", len(res.History))
	}
	for i, rs := range res.History {
		if rs.Start.IsZero() || rs.End.IsZero() || rs.End.Before(rs.Start) {
			t.Fatalf("round %d bounds not ordered: %v .. %v", i, rs.Start, rs.End)
		}
		if rs.Start.Before(res.Start) || rs.End.After(res.End) {
			t.Fatalf("round %d bounds escape the run bounds", i)
		}
	}

	b := newFakeClient("b", 2, 0)
	b.trainVal = 1
	res2, err := Run(Config{Rounds: 1, RunID: "cafef00dcafef00d"}, []Client{b})
	if err != nil {
		t.Fatal(err)
	}
	if res2.RunID != "cafef00dcafef00d" {
		t.Fatalf("configured run ID not passed through: %q", res2.RunID)
	}
}
