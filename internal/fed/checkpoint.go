package fed

// checkpoint.go implements server-side checkpoint/resume: a gob snapshot of
// the coordinator's state — next round, global model, sampler position,
// history, best-so-far tracking, and failure-policy bookkeeping — taken
// every Config.CheckpointEvery rounds through Config.CheckpointWriter. A
// killed run resumed from its last snapshot over the same client fleet
// replays into the same Result as an uninterrupted run (client-side
// optimizer state is owned by the parties and is not part of the snapshot).

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"os"

	"fedomd/internal/nn"
)

// Checkpoint is a gob-serializable snapshot of the coordinator's state,
// taken after a completed round.
type Checkpoint struct {
	// Round is the next round to execute on resume.
	Round int
	// SamplerDraws counts the partial-participation permutations drawn so
	// far; resume replays them to restore the sampler stream.
	SamplerDraws int
	// Global is the aggregated global model entering Round.
	Global *wireParams
	// History and the best-so-far tracking mirror the Result fields.
	History        []RoundStats
	BestValAcc     float64
	TestAtBestVal  float64
	BestRound      int
	BadRounds      int
	TotalBytesUp   int64
	TotalBytesDown int64
	// Failure-policy state, keyed by client name so a resumed fleet may be
	// constructed in a different order.
	Failures     map[string]int
	Strikes      map[string]int
	BenchedUntil map[string]int
	BenchCount   map[string]int
}

// snapshot captures the coordinator state entering round nextRound.
func (st *runState) snapshot(nextRound, samplerDraws int, global *nn.Params, res *Result, badRounds int) *Checkpoint {
	ck := &Checkpoint{
		Round:          nextRound,
		SamplerDraws:   samplerDraws,
		Global:         paramsToWire(global),
		History:        append([]RoundStats(nil), res.History...),
		BestValAcc:     res.BestValAcc,
		TestAtBestVal:  res.TestAtBestVal,
		BestRound:      res.BestRound,
		BadRounds:      badRounds,
		TotalBytesUp:   res.TotalBytesUp,
		TotalBytesDown: res.TotalBytesDown,
	}
	if len(st.failures) > 0 {
		ck.Failures = make(map[string]int, len(st.failures))
		for name, n := range st.failures {
			ck.Failures[name] = n
		}
	}
	if st.policy == Quarantine {
		ck.Strikes = make(map[string]int)
		ck.BenchedUntil = make(map[string]int)
		ck.BenchCount = make(map[string]int)
		for i, c := range st.clients {
			if st.strikes[i] != 0 {
				ck.Strikes[c.Name()] = st.strikes[i]
			}
			if st.benchedUntil[i] != 0 {
				ck.BenchedUntil[c.Name()] = st.benchedUntil[i]
			}
			if st.benchCount[i] != 0 {
				ck.BenchCount[c.Name()] = st.benchCount[i]
			}
		}
	}
	return ck
}

// restore rebuilds the coordinator state from a checkpoint, returning the
// global model to enter ck.Round with. The caller replays the sampler.
func (st *runState) restore(ck *Checkpoint, res *Result, badRounds, startRound, samplerDraws *int) (*nn.Params, error) {
	if ck.Global == nil {
		return nil, errors.New("fed: resume checkpoint has no global model")
	}
	if ck.Round < 0 {
		return nil, fmt.Errorf("fed: resume checkpoint has negative round %d", ck.Round)
	}
	global := paramsFromWire(ck.Global)
	if err := st.clients[0].Params().Compatible(global); err != nil {
		return nil, fmt.Errorf("fed: resume: checkpointed model incompatible with fleet: %w", err)
	}
	*startRound = ck.Round
	*samplerDraws = ck.SamplerDraws
	*badRounds = ck.BadRounds
	res.History = append([]RoundStats(nil), ck.History...)
	res.BestValAcc = ck.BestValAcc
	res.TestAtBestVal = ck.TestAtBestVal
	res.BestRound = ck.BestRound
	res.TotalBytesUp = ck.TotalBytesUp
	res.TotalBytesDown = ck.TotalBytesDown
	byName := make(map[string]int, len(st.clients))
	for i, c := range st.clients {
		byName[c.Name()] = i
	}
	for name, n := range ck.Failures {
		if _, known := byName[name]; known {
			if st.failures == nil {
				st.failures = make(map[string]int)
			}
			st.failures[name] = n
		}
	}
	restoreInto := func(dst []int, src map[string]int) {
		for name, v := range src {
			if i, known := byName[name]; known {
				dst[i] = v
			}
		}
	}
	restoreInto(st.strikes, ck.Strikes)
	restoreInto(st.benchedUntil, ck.BenchedUntil)
	restoreInto(st.benchCount, ck.BenchCount)
	return global, nil
}

// FileCheckpointer returns a CheckpointWriter that persists each snapshot to
// path with a write-to-temp-then-rename, so a crash mid-write never
// corrupts the previous good checkpoint.
func FileCheckpointer(path string) func(*Checkpoint) error {
	return func(ck *Checkpoint) error {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(ck); err != nil {
			return fmt.Errorf("encoding checkpoint: %w", err)
		}
		tmp := path + ".tmp"
		if err := os.WriteFile(tmp, buf.Bytes(), 0o644); err != nil {
			return err
		}
		return os.Rename(tmp, path)
	}
}

// LoadCheckpointFile reads a checkpoint written by FileCheckpointer.
func LoadCheckpointFile(path string) (*Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var ck Checkpoint
	if err := gob.NewDecoder(f).Decode(&ck); err != nil {
		return nil, fmt.Errorf("fed: reading checkpoint %s: %w", path, err)
	}
	return &ck, nil
}
