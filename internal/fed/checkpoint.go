package fed

// checkpoint.go implements server-side checkpoint/resume: a gob snapshot of
// the coordinator's state — next round, global model, sampler position,
// history, best-so-far tracking, and failure-policy bookkeeping — taken
// every Config.CheckpointEvery rounds through Config.CheckpointWriter. A
// killed run resumed from its last snapshot over the same client fleet
// replays into the same Result as an uninterrupted run (client-side
// optimizer state is owned by the parties and is not part of the snapshot).

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"os"

	"fedomd/internal/nn"
)

// SpecVersion is the current model-config header version written into
// Checkpoint.Spec. Bump it when ModelSpec changes incompatibly; readers use
// it to decide how to interpret older headers.
const SpecVersion = 1

// ModelSpec is the versioned model-config header of a checkpoint: enough
// identity and hyperparameter information to reconstruct the model the
// snapshot's parameters belong to without the training process that wrote
// it — the contract the serving plane (internal/serve, cmd/fedomdserve)
// loads models through. Pre-header snapshots decode with a nil Spec (gob
// ignores absent fields), which LoadCheckpointFile-era readers must treat
// as "architecture unknown, caller supplies it".
type ModelSpec struct {
	// SpecVersion is the header format version (SpecVersion at write time).
	SpecVersion int
	// Model is the architecture kind: "fedomd" (the paper's OrthoGCN),
	// "mlp", "gcn", or "sgc".
	Model string
	// Features and Classes are the input and output widths.
	Features, Classes int
	// Hidden and HiddenLayers shape the OrthoGCN (Model == "fedomd").
	Hidden, HiddenLayers int
	// Dims are the full layer dimensions for "mlp"/"gcn" models.
	Dims []int
	// Dropout is recorded for exact reconstruction; inference ignores it.
	Dropout float64
	// SpectralBound mirrors OrthoGCN's Q̃ = Q/‖Q‖ forward bounding.
	SpectralBound bool
	// Hops is SGC's propagation depth.
	Hops int
	// Dataset, Divisor and DataSeed name the dataset recipe the model was
	// trained against, so a server can regenerate the graph the node IDs
	// index into. Empty/zero when the caller served its own graph.
	Dataset  string
	Divisor  int
	DataSeed int64
}

// Checkpoint is a gob-serializable snapshot of the coordinator's state,
// taken after a completed round.
type Checkpoint struct {
	// Round is the next round to execute on resume.
	Round int
	// SamplerDraws counts the partial-participation permutations drawn so
	// far; resume replays them to restore the sampler stream.
	SamplerDraws int
	// Global is the aggregated global model entering Round.
	Global *wireParams
	// Spec is the versioned model-config header (nil on snapshots written
	// before the header existed, or when Config.Spec was not set).
	Spec *ModelSpec
	// History and the best-so-far tracking mirror the Result fields.
	History        []RoundStats
	BestValAcc     float64
	TestAtBestVal  float64
	BestRound      int
	BadRounds      int
	TotalBytesUp   int64
	TotalBytesDown int64
	// Failure-policy state, keyed by client name so a resumed fleet may be
	// constructed in a different order.
	Failures     map[string]int
	Strikes      map[string]int
	BenchedUntil map[string]int
	BenchCount   map[string]int

	// Async buffered-aggregation state (Aggregation == AggAsync; nil/empty
	// otherwise). The staleness clock is Round itself: an update's applied
	// staleness at fold time is fold round minus its DispatchRound, both of
	// which resume exactly. AsyncBuffer holds the updates that had arrived
	// but not folded, in arrival order; jobs still executing when the
	// snapshot was taken are lost like any crash and are redispatched on
	// resume. AsyncDispatch records the last dispatch round per party, and
	// the AsyncMeans/AsyncCentral/AsyncAux triple is the statistics state
	// dispatches carry.
	AsyncBuffer   []AsyncBufferedUpdate
	AsyncDispatch map[string]int
	AsyncMeans    []wireDense
	AsyncCentral  [][]wireDense
	AsyncAux      *wireParams
}

// AsyncBufferedUpdate is the wire form of one arrived-but-unfolded async
// update (see async.go's asyncUpdate).
type AsyncBufferedUpdate struct {
	Party         string
	DispatchRound int
	Loss          float64
	Params        *wireParams
	Means         []wireDense
	Count         int
	Moms          [][]wireDense
	Aux           *wireParams
	TrainSecs     float64
}

// snapshot captures the coordinator state entering round nextRound.
func (st *runState) snapshot(nextRound, samplerDraws int, global *nn.Params, res *Result, badRounds int) *Checkpoint {
	ck := &Checkpoint{
		Round:          nextRound,
		SamplerDraws:   samplerDraws,
		Global:         paramsToWire(global),
		Spec:           st.spec,
		History:        append([]RoundStats(nil), res.History...),
		BestValAcc:     res.BestValAcc,
		TestAtBestVal:  res.TestAtBestVal,
		BestRound:      res.BestRound,
		BadRounds:      badRounds,
		TotalBytesUp:   res.TotalBytesUp,
		TotalBytesDown: res.TotalBytesDown,
	}
	if len(st.failures) > 0 {
		ck.Failures = make(map[string]int, len(st.failures))
		for name, n := range st.failures {
			ck.Failures[name] = n
		}
	}
	if st.policy == Quarantine {
		ck.Strikes = make(map[string]int)
		ck.BenchedUntil = make(map[string]int)
		ck.BenchCount = make(map[string]int)
		for i, c := range st.clients {
			if st.strikes[i] != 0 {
				ck.Strikes[c.Name()] = st.strikes[i]
			}
			if st.benchedUntil[i] != 0 {
				ck.BenchedUntil[c.Name()] = st.benchedUntil[i]
			}
			if st.benchCount[i] != 0 {
				ck.BenchCount[c.Name()] = st.benchCount[i]
			}
		}
	}
	return ck
}

// restore rebuilds the coordinator state from a checkpoint, returning the
// global model to enter ck.Round with. The caller replays the sampler.
func (st *runState) restore(ck *Checkpoint, res *Result, badRounds, startRound, samplerDraws *int) (*nn.Params, error) {
	if ck.Global == nil {
		return nil, errors.New("fed: resume checkpoint has no global model")
	}
	if ck.Round < 0 {
		return nil, fmt.Errorf("fed: resume checkpoint has negative round %d", ck.Round)
	}
	global := paramsFromWire(ck.Global)
	if err := st.clients[0].Params().Compatible(global); err != nil {
		return nil, fmt.Errorf("fed: resume: checkpointed model incompatible with fleet: %w", err)
	}
	*startRound = ck.Round
	*samplerDraws = ck.SamplerDraws
	*badRounds = ck.BadRounds
	res.History = append([]RoundStats(nil), ck.History...)
	res.BestValAcc = ck.BestValAcc
	res.TestAtBestVal = ck.TestAtBestVal
	res.BestRound = ck.BestRound
	res.TotalBytesUp = ck.TotalBytesUp
	res.TotalBytesDown = ck.TotalBytesDown
	byName := make(map[string]int, len(st.clients))
	for i, c := range st.clients {
		byName[c.Name()] = i
	}
	for name, n := range ck.Failures {
		if _, known := byName[name]; known {
			if st.failures == nil {
				st.failures = make(map[string]int)
			}
			st.failures[name] = n
		}
	}
	restoreInto := func(dst []int, src map[string]int) {
		for name, v := range src {
			if i, known := byName[name]; known {
				dst[i] = v
			}
		}
	}
	restoreInto(st.strikes, ck.Strikes)
	restoreInto(st.benchedUntil, ck.BenchedUntil)
	restoreInto(st.benchCount, ck.BenchCount)
	return global, nil
}

// snapshotInto adds the async engine's state to a base checkpoint: the
// buffer, the per-party dispatch rounds, and the statistics state.
func (eng *asyncEngine) snapshotInto(ck *Checkpoint) {
	for _, u := range eng.buffer {
		w := AsyncBufferedUpdate{
			Party:         eng.st.clients[u.party].Name(),
			DispatchRound: u.dispatch,
			Loss:          u.loss,
			Params:        paramsToWire(u.params),
			Count:         u.count,
			TrainSecs:     u.trainSecs,
		}
		if u.means != nil {
			w.Means = vecsToWire(u.means)
		}
		for _, layer := range u.moms {
			w.Moms = append(w.Moms, vecsToWire(layer))
		}
		if u.aux != nil {
			w.Aux = paramsToWire(u.aux)
		}
		ck.AsyncBuffer = append(ck.AsyncBuffer, w)
	}
	ck.AsyncDispatch = make(map[string]int)
	for i, r := range eng.lastDispatch {
		if r >= 0 {
			ck.AsyncDispatch[eng.st.clients[i].Name()] = r
		}
	}
	if eng.stats.means != nil {
		ck.AsyncMeans = vecsToWire(eng.stats.means)
	}
	for _, layer := range eng.stats.central {
		ck.AsyncCentral = append(ck.AsyncCentral, vecsToWire(layer))
	}
	if eng.stats.aux != nil {
		ck.AsyncAux = paramsToWire(eng.stats.aux)
	}
}

// restore rebuilds the async engine's state from a checkpoint. Buffered
// updates from parties unknown to the resumed fleet are dropped; restored
// parameter sets are fresh allocations, never pooled.
func (eng *asyncEngine) restore(ck *Checkpoint) error {
	byName := make(map[string]int, len(eng.st.clients))
	for i, c := range eng.st.clients {
		byName[c.Name()] = i
	}
	for _, w := range ck.AsyncBuffer {
		i, known := byName[w.Party]
		if !known {
			continue
		}
		if w.Params == nil {
			return fmt.Errorf("fed: resume: buffered update from %s has no params", w.Party)
		}
		u := &asyncUpdate{
			party:     i,
			dispatch:  w.DispatchRound,
			loss:      w.Loss,
			params:    paramsFromWire(w.Params),
			encBytes:  -1,
			count:     w.Count,
			trainSecs: w.TrainSecs,
		}
		if w.Means != nil {
			u.means = vecsFromWire(w.Means)
		}
		for _, layer := range w.Moms {
			u.moms = append(u.moms, vecsFromWire(layer))
		}
		if w.Aux != nil {
			u.aux = paramsFromWire(w.Aux)
		}
		eng.buffer = append(eng.buffer, u)
	}
	for name, r := range ck.AsyncDispatch {
		if i, known := byName[name]; known {
			eng.lastDispatch[i] = r
		}
	}
	if ck.AsyncMeans != nil {
		eng.stats.means = vecsFromWire(ck.AsyncMeans)
	}
	for _, layer := range ck.AsyncCentral {
		eng.stats.central = append(eng.stats.central, vecsFromWire(layer))
	}
	if ck.AsyncAux != nil {
		eng.stats.aux = paramsFromWire(ck.AsyncAux)
	}
	return nil
}

// FileCheckpointer returns a CheckpointWriter that persists each snapshot to
// path with a write-to-temp-then-rename, so a crash mid-write never
// corrupts the previous good checkpoint.
func FileCheckpointer(path string) func(*Checkpoint) error {
	return func(ck *Checkpoint) error {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(ck); err != nil {
			return fmt.Errorf("encoding checkpoint: %w", err)
		}
		tmp := path + ".tmp"
		if err := os.WriteFile(tmp, buf.Bytes(), 0o644); err != nil {
			return err
		}
		return os.Rename(tmp, path)
	}
}

// GlobalParams reconstructs the checkpointed global model parameters as a
// fresh (never pooled) parameter set — the serving plane's entry point.
func (ck *Checkpoint) GlobalParams() (*nn.Params, error) {
	if ck.Global == nil {
		return nil, errors.New("fed: checkpoint has no global model")
	}
	return paramsFromWire(ck.Global), nil
}

// NewModelCheckpoint builds a minimal checkpoint carrying just a model and
// its config header — what a serving test or bench needs to exercise the
// load/swap path without a training run. The wire form aliases the params'
// backing arrays (like every snapshot), so encode the checkpoint before
// mutating them.
func NewModelCheckpoint(round int, global *nn.Params, spec *ModelSpec) *Checkpoint {
	return &Checkpoint{Round: round, Global: paramsToWire(global), Spec: spec}
}

// LoadCheckpointFile reads a checkpoint written by FileCheckpointer.
func LoadCheckpointFile(path string) (*Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var ck Checkpoint
	if err := gob.NewDecoder(f).Decode(&ck); err != nil {
		return nil, fmt.Errorf("fed: reading checkpoint %s: %w", path, err)
	}
	return &ck, nil
}
