package dataset

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"fedomd/internal/partition"
)

func TestPresetStatisticsMatchTable2(t *testing.T) {
	// The generator must hit the paper's Table 2 statistics: exact node,
	// class and feature counts, edges within 5% (edge sampling can fall a
	// little short because duplicates are rejected).
	wants := map[string][4]int{ // nodes, edges, classes, features
		Cora:     {2708, 5429, 7, 1433},
		Citeseer: {3312, 4732, 6, 3703},
	}
	for name, want := range wants {
		cfg, err := Preset(name)
		if err != nil {
			t.Fatal(err)
		}
		g, err := Generate(cfg, 1)
		if err != nil {
			t.Fatal(err)
		}
		s := g.Summary()
		if s.Nodes != want[0] || s.Classes != want[2] || s.Features != want[3] {
			t.Fatalf("%s: stats %v want %v", name, s, want)
		}
		if math.Abs(float64(s.Edges-want[1]))/float64(want[1]) > 0.05 {
			t.Fatalf("%s: edges %d want within 5%% of %d", name, s.Edges, want[1])
		}
	}
}

func TestPresetUnknown(t *testing.T) {
	if _, err := Preset("imagenet"); err == nil {
		t.Fatal("unknown preset accepted")
	}
}

func TestAllPresetsValidate(t *testing.T) {
	for _, name := range Names() {
		cfg, err := Preset(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := cfg.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	base := Config{Name: "x", Nodes: 100, Edges: 200, Classes: 4, Features: 40,
		CommunitiesPerClass: 2, Homophily: 0.8, ActiveFeatures: 5, SignalRatio: 0.7}
	if err := base.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(Config) Config{
		func(c Config) Config { c.Nodes = 0; return c },
		func(c Config) Config { c.Classes = 0; return c },
		func(c Config) Config { c.Classes = c.Nodes + 1; return c },
		func(c Config) Config { c.Features = 2; return c },
		func(c Config) Config { c.Edges = -1; return c },
		func(c Config) Config { c.CommunitiesPerClass = 0; return c },
		func(c Config) Config { c.Homophily = 1.5; return c },
		func(c Config) Config { c.ActiveFeatures = 0; return c },
		func(c Config) Config { c.ActiveFeatures = c.Features + 1; return c },
		func(c Config) Config { c.SignalRatio = -0.1; return c },
	}
	for i, mut := range bad {
		if err := mut(base).Validate(); err == nil {
			t.Fatalf("mutation %d accepted", i)
		}
	}
}

func smallCfg() Config {
	return Config{Name: "small", Nodes: 300, Edges: 900, Classes: 3, Features: 60,
		CommunitiesPerClass: 2, Homophily: 0.85, ActiveFeatures: 6, SignalRatio: 0.85}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(smallCfg(), 7)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Generate(smallCfg(), 7)
	if !a.Features.Equal(b.Features) {
		t.Fatal("features differ under same seed")
	}
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("edges differ under same seed")
	}
	c, _ := Generate(smallCfg(), 8)
	if a.Features.Equal(c.Features) {
		t.Fatal("different seeds produced identical features")
	}
}

func TestGeneratedHomophily(t *testing.T) {
	g, err := Generate(smallCfg(), 3)
	if err != nil {
		t.Fatal(err)
	}
	// Homophily 0.85 with community-internal edges sharing class: measured
	// edge homophily should be clearly above the random baseline 1/3.
	if h := g.EdgeHomophily(); h < 0.6 {
		t.Fatalf("edge homophily %v too low for Homophily=0.85", h)
	}
	low := smallCfg()
	low.Homophily = 0.05
	g2, _ := Generate(low, 3)
	if g2.EdgeHomophily() >= g.EdgeHomophily() {
		t.Fatal("lowering Homophily did not lower measured homophily")
	}
}

func TestFeaturesRowNormalisedAndClassCorrelated(t *testing.T) {
	g, err := Generate(smallCfg(), 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < g.NumNodes(); i++ {
		var sum float64
		for _, v := range g.Features.Row(i) {
			if v < 0 {
				t.Fatal("negative feature")
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("row %d not L1-normalised: %v", i, sum)
		}
	}
	// Class signature blocks: class c's mass should concentrate in its block.
	byClass := g.FeatureMeanByClass()
	block := g.NumFeatures() / g.NumClasses
	for c := 0; c < g.NumClasses; c++ {
		var inBlock, total float64
		for j := 0; j < g.NumFeatures(); j++ {
			v := byClass.At(c, j)
			total += v
			if j >= c*block && j < (c+1)*block {
				inBlock += v
			}
		}
		if inBlock/total < 0.5 {
			t.Fatalf("class %d signature weak: %.2f of mass in block", c, inBlock/total)
		}
	}
}

func TestLouvainPartitionIsNonIID(t *testing.T) {
	// The generated community structure must produce non-i.i.d parties when
	// cut by Louvain — the premise of the whole paper (Figure 4).
	g, err := Generate(smallCfg(), 9)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	louvain, err := partition.LouvainParties(g, 3, 1.0, rng)
	if err != nil {
		t.Fatal(err)
	}
	random, err := partition.RandomParties(g, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	ls := partition.NonIIDScore(louvain, g.NumClasses)
	rs := partition.NonIIDScore(random, g.NumClasses)
	if ls <= rs {
		t.Fatalf("Louvain parties (%.3f) not more non-iid than random (%.3f)", ls, rs)
	}
	if ls < 0.2 {
		t.Fatalf("Louvain non-iid score %.3f too weak", ls)
	}
}

func TestScaled(t *testing.T) {
	cfg, _ := Preset(Cora)
	s := Scaled(cfg, 4)
	if s.Nodes != 2708/4 || s.Features != 1433/4 {
		t.Fatalf("Scaled dims wrong: %+v", s)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if same := Scaled(cfg, 1); same.Nodes != cfg.Nodes {
		t.Fatal("divisor 1 changed config")
	}
	// Extreme divisor must still validate.
	ex := Scaled(cfg, 1000)
	if err := ex.Validate(); err != nil {
		t.Fatalf("extreme scaling invalid: %v", err)
	}
}

func TestGenerateScaledPresetsProperty(t *testing.T) {
	f := func(seed int64) bool {
		cfg, _ := Preset(Cora)
		g, err := Generate(Scaled(cfg, 16), seed)
		if err != nil {
			return false
		}
		// Basic invariants: all labels in range, no self loops (graph.New
		// enforces), node count preserved.
		if g.NumNodes() != Scaled(cfg, 16).Nodes {
			return false
		}
		for _, y := range g.Labels {
			if y < 0 || y >= g.NumClasses {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

func TestEveryClassPopulated(t *testing.T) {
	g, err := Generate(smallCfg(), 11)
	if err != nil {
		t.Fatal(err)
	}
	h := g.LabelHistogram()
	for c, n := range h {
		if n == 0 {
			t.Fatalf("class %d empty: %v", c, h)
		}
	}
}
