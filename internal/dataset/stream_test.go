package dataset

import (
	"math"
	"math/rand"
	"testing"
)

func streamTestConfig(nodes int) Config {
	return Config{
		Name:                "stream-test",
		Nodes:               nodes,
		Edges:               nodes * 4,
		Classes:             7,
		Features:            140,
		CommunitiesPerClass: 3,
		Homophily:           0.8,
		ActiveFeatures:      12,
		SignalRatio:         0.8,
	}
}

func TestGenerateStreamBasicInvariants(t *testing.T) {
	cfg := streamTestConfig(4000)
	g, err := GenerateStream(cfg, 17)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != cfg.Nodes {
		t.Fatalf("nodes = %d, want %d", g.NumNodes(), cfg.Nodes)
	}
	// Edge count concentrates around the budget: Bernoulli sums at these
	// sizes stay within a few percent.
	e := g.NumEdges()
	if e < cfg.Edges*8/10 || e > cfg.Edges*12/10 {
		t.Fatalf("edges = %d, want within 20%% of %d", e, cfg.Edges)
	}
	// Symmetric, no self loops, sorted columns — walk the CSR directly.
	for i := 0; i < g.NumNodes(); i++ {
		last := -1
		g.Adj.RowEntries(i, func(j int, v float64) {
			if j == i {
				t.Fatalf("self loop at %d", i)
			}
			if j <= last {
				t.Fatalf("row %d columns not ascending", i)
			}
			last = j
			if v != 1 {
				t.Fatalf("edge weight %g at (%d,%d), want 1", v, i, j)
			}
			if g.Adj.At(j, i) != 1 {
				t.Fatalf("asymmetric edge (%d,%d)", i, j)
			}
		})
	}
	// Labels cover all classes; class blocks are contiguous.
	seen := make([]bool, cfg.Classes)
	for i, y := range g.Labels {
		seen[y] = true
		if i > 0 && g.Labels[i-1] > y {
			t.Fatalf("labels not in contiguous class blocks at node %d", i)
		}
	}
	for c, ok := range seen {
		if !ok {
			t.Fatalf("class %d has no nodes", c)
		}
	}
	// Planted homophily shows up in the realised graph. Background edges can
	// also join same-class nodes, so the floor is the homophily knob itself.
	if h := g.EdgeHomophily(); h < cfg.Homophily-0.1 {
		t.Fatalf("edge homophily %.3f too low for planted %.2f", h, cfg.Homophily)
	}
	// Features: rows L1-normalised with ≥1 active feature.
	for i := 0; i < g.NumNodes(); i++ {
		var sum float64
		for _, v := range g.Features.Row(i) {
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("feature row %d sums to %g", i, sum)
		}
	}
}

func TestGenerateStreamDeterministic(t *testing.T) {
	cfg := streamTestConfig(2000)
	a, err := GenerateStream(cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateStream(cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumEdges() != b.NumEdges() {
		t.Fatalf("edge counts differ under same seed: %d vs %d", a.NumEdges(), b.NumEdges())
	}
	for i := 0; i < a.NumNodes(); i++ {
		if a.Labels[i] != b.Labels[i] {
			t.Fatalf("labels differ at %d", i)
		}
		an, bn := a.Neighbors(i), b.Neighbors(i)
		if len(an) != len(bn) {
			t.Fatalf("degree differs at %d", i)
		}
		for k := range an {
			if an[k] != bn[k] {
				t.Fatalf("neighbour lists differ at %d", i)
			}
		}
	}
	c, err := GenerateStream(cfg, 6)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumEdges() == a.NumEdges() && sameNeighbors(a, c) {
		t.Fatal("different seeds produced identical graphs")
	}
}

func sameNeighbors(a, b interface {
	NumNodes() int
	Neighbors(int) []int
}) bool {
	for i := 0; i < a.NumNodes(); i++ {
		an, bn := a.Neighbors(i), b.Neighbors(i)
		if len(an) != len(bn) {
			return false
		}
		for k := range an {
			if an[k] != bn[k] {
				return false
			}
		}
	}
	return true
}

func TestDecodePairRoundTrip(t *testing.T) {
	// Exhaustive small check plus spot checks at large k (beyond float
	// precision of the naive sqrt).
	k := int64(0)
	for v := int64(1); v < 80; v++ {
		for u := int64(0); u < v; u++ {
			gu, gv := decodePair(k)
			if int64(gu) != u || int64(gv) != v {
				t.Fatalf("decodePair(%d) = (%d,%d), want (%d,%d)", k, gu, gv, u, v)
			}
			k++
		}
	}
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10000; trial++ {
		v := int64(2 + rng.Intn(2_000_000))
		u := int64(rng.Intn(int(v)))
		k := v*(v-1)/2 + u
		gu, gv := decodePair(k)
		if int64(gu) != u || int64(gv) != v {
			t.Fatalf("decodePair(%d) = (%d,%d), want (%d,%d)", k, gu, gv, u, v)
		}
	}
}

func TestBernoulliSweepStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const pairs = 200000
	const p = 0.01
	hits := 0
	last := int64(-1)
	bernoulliSweep(rng, pairs, p, func(k int64) {
		if k <= last {
			t.Fatalf("sweep not strictly ascending: %d after %d", k, last)
		}
		if k >= pairs {
			t.Fatalf("hit %d out of range", k)
		}
		last = k
		hits++
	})
	want := float64(pairs) * p
	if float64(hits) < want*0.85 || float64(hits) > want*1.15 {
		t.Fatalf("hits = %d, want ≈ %.0f", hits, want)
	}
	// Degenerate regimes.
	bernoulliSweep(rng, 10, 0, func(int64) { t.Fatal("p=0 must hit nothing") })
	n := 0
	bernoulliSweep(rng, 10, 1, func(int64) { n++ })
	if n != 10 {
		t.Fatalf("p=1 hit %d of 10", n)
	}
}

// TestGenerateStreamMatchesGenerateContract: the streamed generator accepts
// the same presets as the rejection-sampling one and produces comparable
// graphs (same node count, edge count within tolerance, homophily planted).
func TestGenerateStreamOnPreset(t *testing.T) {
	preset, err := Preset(Cora)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Scaled(preset, 2)
	g, err := GenerateStream(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != cfg.Nodes || g.NumClasses != cfg.Classes {
		t.Fatalf("preset dims mismatch: %d nodes %d classes", g.NumNodes(), g.NumClasses)
	}
}
