package dataset

import (
	"math"
	"math/rand"
	"sort"

	"fedomd/internal/graph"
	"fedomd/internal/mat"
	"fedomd/internal/sparse"
)

// GenerateStream builds a graph from the same Config as Generate, but scales
// to millions of nodes: it is a true stochastic block model sampled with
// per-block geometric skip sampling, O(E + N) time and memory with no edge
// hash set, no coordinate re-sort and no O(N²) pair sweep.
//
// Layout: classes own contiguous node ranges (sizes mildly imbalanced, as in
// Generate); each class range is cut into CommunitiesPerClass contiguous
// communities. A fraction Homophily of the Edges budget is spent inside
// communities (Bernoulli over each community's pair space with probability
// p_in) and the rest as background between communities (Bernoulli over the
// global pair space with probability p_out, same-community pairs skipped so
// nothing is sampled twice). Bernoulli sweeps over k pairs run in O(hits):
// successive hits are found by geometric skips, t += 1 + ⌊ln U / ln(1-p)⌋,
// and each global pair index decodes to (u,v) by inverting k = v(v-1)/2 + u.
//
// The adjacency is assembled directly in CSR form (degree count → prefix →
// scatter → per-row small sort), and features use the same class-signature
// model as Generate. Deterministic under the seed.
func GenerateStream(cfg Config, seed int64) (*graph.Graph, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	n := cfg.Nodes

	// Contiguous, slightly unequal class blocks.
	shares := make([]float64, cfg.Classes)
	var totalShare float64
	for c := range shares {
		shares[c] = 1 + 0.5*rng.Float64()
		totalShare += shares[c]
	}
	classStart := make([]int, cfg.Classes+1)
	idx := 0
	for c := 0; c < cfg.Classes; c++ {
		classStart[c] = idx
		count := int(float64(n) * shares[c] / totalShare)
		if count < 1 {
			count = 1
		}
		idx += count
		if idx > n {
			idx = n
		}
	}
	classStart[cfg.Classes] = n
	labels := make([]int, n)
	for c := 0; c < cfg.Classes; c++ {
		for i := classStart[c]; i < classStart[c+1]; i++ {
			labels[i] = c
		}
	}

	// Contiguous communities inside each class block.
	totalComms := cfg.Classes * cfg.CommunitiesPerClass
	commStart := make([]int, 0, totalComms+1)
	for c := 0; c < cfg.Classes; c++ {
		lo, hi := classStart[c], classStart[c+1]
		size := hi - lo
		for q := 0; q < cfg.CommunitiesPerClass; q++ {
			commStart = append(commStart, lo+size*q/cfg.CommunitiesPerClass)
		}
	}
	commStart = append(commStart, n)
	community := make([]int32, n)
	for cm := 0; cm < totalComms; cm++ {
		for i := commStart[cm]; i < commStart[cm+1]; i++ {
			community[i] = int32(cm)
		}
	}

	// Edge probabilities from the budget split.
	var intraPairs float64
	for cm := 0; cm < totalComms; cm++ {
		s := float64(commStart[cm+1] - commStart[cm])
		intraPairs += s * (s - 1) / 2
	}
	allPairs := float64(n) * float64(n-1) / 2
	interPairs := allPairs - intraPairs
	var pIn, pOut float64
	if intraPairs > 0 {
		pIn = cfg.Homophily * float64(cfg.Edges) / intraPairs
	}
	if interPairs > 0 {
		pOut = (1 - cfg.Homophily) * float64(cfg.Edges) / interPairs
	}
	if pIn > 1 {
		pIn = 1
	}
	if pOut > 1 {
		pOut = 1
	}

	est := int(pIn*intraPairs+pOut*interPairs) + 16
	edges := make([]int64, 0, est)

	// Intra-community edges: an independent Bernoulli(pIn) sweep over each
	// community's triangular pair space.
	for cm := 0; cm < totalComms; cm++ {
		base := commStart[cm]
		s := commStart[cm+1] - base
		pairs := int64(s) * int64(s-1) / 2
		bernoulliSweep(rng, pairs, pIn, func(k int64) {
			u, v := decodePair(k)
			edges = append(edges, packEdge(base+u, base+v))
		})
	}

	// Background edges: Bernoulli(pOut) over the global pair space, skipping
	// pairs that fall inside a community (their space was already swept).
	globalPairs := int64(n) * int64(n-1) / 2
	bernoulliSweep(rng, globalPairs, pOut, func(k int64) {
		u, v := decodePair(k)
		if community[u] == community[v] {
			return
		}
		edges = append(edges, packEdge(u, v))
	})

	adj, err := buildSymmetricCSR(n, edges)
	if err != nil {
		return nil, err
	}

	feats := streamFeatureMatrix(cfg, labels, community, rng)
	return graph.NewFromCSR(adj, feats, labels, cfg.Classes)
}

// bernoulliSweep visits each index in [0, pairs) with probability p, in
// ascending order, in O(hits) time via geometric skips.
func bernoulliSweep(rng *rand.Rand, pairs int64, p float64, hit func(k int64)) {
	if pairs <= 0 || p <= 0 {
		return
	}
	if p >= 1 {
		for k := int64(0); k < pairs; k++ {
			hit(k)
		}
		return
	}
	lq := math.Log1p(-p) // ln(1-p) < 0
	k := int64(-1)
	for {
		u := 1 - rng.Float64() // (0, 1]
		k += 1 + int64(math.Log(u)/lq)
		if k < 0 || k >= pairs { // k<0 guards int64 overflow on huge skips
			return
		}
		hit(k)
	}
}

// decodePair inverts k = v(v-1)/2 + u with 0 ≤ u < v: the k-th pair of the
// triangular enumeration. Float sqrt gives the candidate v; the exact bounds
// are restored with a couple of integer steps.
func decodePair(k int64) (int, int) {
	v := int64((1 + math.Sqrt(1+8*float64(k))) / 2)
	for v*(v-1)/2 > k {
		v--
	}
	for (v+1)*v/2 <= k {
		v++
	}
	return int(k - v*(v-1)/2), int(v)
}

func packEdge(u, v int) int64 { return int64(u)<<32 | int64(v) }

// buildSymmetricCSR assembles the undirected adjacency from packed (u<v)
// edges: degree count, prefix sum, scatter of both directions, then an
// insertion sort per row (rows are short — average degree — so this stays
// effectively linear and keeps the sorted-columns invariant At needs).
func buildSymmetricCSR(n int, edges []int64) (*sparse.CSR, error) {
	deg := make([]int32, n)
	for _, e := range edges {
		u, v := int(e>>32), int(e&0xffffffff)
		deg[u]++
		deg[v]++
	}
	rowPtr := make([]int, n+1)
	for i := 0; i < n; i++ {
		rowPtr[i+1] = rowPtr[i] + int(deg[i])
	}
	nnz := rowPtr[n]
	colIdx := make([]int, nnz)
	vals := make([]float64, nnz)
	cursor := make([]int, n)
	copy(cursor, rowPtr[:n])
	for _, e := range edges {
		u, v := int(e>>32), int(e&0xffffffff)
		colIdx[cursor[u]] = v
		cursor[u]++
		colIdx[cursor[v]] = u
		cursor[v]++
	}
	for i := range vals {
		vals[i] = 1
	}
	for i := 0; i < n; i++ {
		row := colIdx[rowPtr[i]:rowPtr[i+1]]
		if len(row) > 24 {
			sort.Ints(row)
			continue
		}
		for a := 1; a < len(row); a++ {
			x := row[a]
			b := a - 1
			for b >= 0 && row[b] > x {
				row[b+1] = row[b]
				b--
			}
			row[b+1] = x
		}
	}
	return sparse.NewCSRFromParts(n, n, rowPtr, colIdx, vals)
}

// streamFeatureMatrix is the scale-path twin of newFeatureMatrix: the same
// class-signature / community-shift model, written against the contiguous
// community layout (community id per node, class block starts).
func streamFeatureMatrix(cfg Config, labels []int, community []int32, rng *rand.Rand) *mat.Dense {
	feats := mat.New(cfg.Nodes, cfg.Features)
	blockSize := cfg.Features / cfg.Classes
	if blockSize < 1 {
		blockSize = 1
	}
	for i := 0; i < cfg.Nodes; i++ {
		y := labels[i]
		blockStart := y * blockSize % cfg.Features
		commInClass := int(community[i]) % cfg.CommunitiesPerClass
		shift := 0
		if cfg.CommunitiesPerClass > 1 {
			shift = commInClass * blockSize / (4 * cfg.CommunitiesPerClass)
		}
		row := feats.Row(i)
		active := 0
		for tries := 0; active < cfg.ActiveFeatures && tries < cfg.ActiveFeatures*6; tries++ {
			var j int
			if rng.Float64() < cfg.SignalRatio {
				j = blockStart + (shift+rng.Intn(blockSize))%blockSize
			} else {
				j = rng.Intn(cfg.Features)
			}
			if j >= cfg.Features {
				j = cfg.Features - 1
			}
			if row[j] == 0 {
				row[j] = 1
				active++
			}
		}
		if active == 0 {
			row[blockStart%cfg.Features] = 1
			active = 1
		}
		inv := 1 / float64(active)
		for j := range row {
			row[j] *= inv
		}
	}
	return feats
}
