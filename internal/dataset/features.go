package dataset

import (
	"math/rand"

	"fedomd/internal/mat"
)

// newFeatureMatrix samples the sparse bag-of-words-style binary feature
// matrix. Each class owns a contiguous signature block of the feature space;
// each community uses a shifted sub-window of its class block, giving
// parties distinct feature distributions even when they share classes.
// Rows are L1-normalised, matching the standard preprocessing of the
// citation benchmarks.
func newFeatureMatrix(cfg Config, labels, community []int, rng *rand.Rand) *mat.Dense {
	feats := mat.New(cfg.Nodes, cfg.Features)
	blockSize := cfg.Features / cfg.Classes
	for i := 0; i < cfg.Nodes; i++ {
		y := labels[i]
		blockStart := y * blockSize
		// Community shift: up to a quarter of the block, cyclic inside it.
		commInClass := community[i] % cfg.CommunitiesPerClass
		shift := 0
		if cfg.CommunitiesPerClass > 1 {
			shift = commInClass * blockSize / (4 * cfg.CommunitiesPerClass)
		}
		row := feats.Row(i)
		active := 0
		for tries := 0; active < cfg.ActiveFeatures && tries < cfg.ActiveFeatures*6; tries++ {
			var j int
			if rng.Float64() < cfg.SignalRatio {
				j = blockStart + (shift+rng.Intn(max(blockSize, 1)))%max(blockSize, 1)
			} else {
				j = rng.Intn(cfg.Features)
			}
			if row[j] == 0 {
				row[j] = 1
				active++
			}
		}
		if active == 0 {
			row[blockStart%cfg.Features] = 1
			active = 1
		}
		inv := 1 / float64(active)
		for j := range row {
			row[j] *= inv
		}
	}
	return feats
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
