// Package dataset generates the synthetic stand-ins for the five benchmark
// graphs of paper Table 2 (Cora, Citeseer, Amazon Computer, Amazon Photo,
// Coauthor-CS). The real datasets are downloads this offline module cannot
// perform, so each is replaced by a class-structured stochastic block model
// with planted homophily plus class-conditioned sparse binary features — the
// properties the evaluated algorithms actually exploit (label/feature
// correlation, community structure Louvain can cut, non-i.i.d subgraphs).
// See DESIGN.md §1 for the substitution rationale.
package dataset

import (
	"fmt"
	"math/rand"

	"fedomd/internal/graph"
)

// Config parameterises the generator. The presets in presets.go mirror the
// published statistics of each paper dataset.
type Config struct {
	Name     string
	Nodes    int
	Edges    int // target undirected edge count
	Classes  int
	Features int

	// CommunitiesPerClass controls how many Louvain-discoverable blocks each
	// class splits into. More communities ⇒ finer possible partitions.
	CommunitiesPerClass int
	// Homophily is the probability an edge is drawn inside a community
	// (endpoints then share a class); the rest are uniform random pairs.
	Homophily float64
	// ActiveFeatures is the expected number of non-zero features per node
	// (bag-of-words sparsity).
	ActiveFeatures int
	// SignalRatio is the probability an active feature is drawn from the
	// node's class signature block rather than uniformly (feature noise).
	SignalRatio float64
}

// Validate reports the first problem with the configuration.
func (c Config) Validate() error {
	switch {
	case c.Nodes <= 0:
		return fmt.Errorf("dataset %q: Nodes must be positive", c.Name)
	case c.Classes <= 0 || c.Classes > c.Nodes:
		return fmt.Errorf("dataset %q: Classes must be in [1, Nodes]", c.Name)
	case c.Features < c.Classes:
		return fmt.Errorf("dataset %q: need at least one feature per class", c.Name)
	case c.Edges < 0:
		return fmt.Errorf("dataset %q: negative Edges", c.Name)
	case c.CommunitiesPerClass <= 0:
		return fmt.Errorf("dataset %q: CommunitiesPerClass must be positive", c.Name)
	case c.Homophily < 0 || c.Homophily > 1:
		return fmt.Errorf("dataset %q: Homophily outside [0,1]", c.Name)
	case c.ActiveFeatures <= 0 || c.ActiveFeatures > c.Features:
		return fmt.Errorf("dataset %q: ActiveFeatures must be in [1, Features]", c.Name)
	case c.SignalRatio < 0 || c.SignalRatio > 1:
		return fmt.Errorf("dataset %q: SignalRatio outside [0,1]", c.Name)
	}
	return nil
}

// Generate builds a graph from the configuration, deterministically under
// the seed.
func Generate(cfg Config, seed int64) (*graph.Graph, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))

	// Assign classes in contiguous, slightly unequal blocks (real citation
	// datasets are imbalanced). Block c gets a share proportional to
	// 1 + 0.5·U[0,1).
	shares := make([]float64, cfg.Classes)
	var totalShare float64
	for c := range shares {
		shares[c] = 1 + 0.5*rng.Float64()
		totalShare += shares[c]
	}
	labels := make([]int, cfg.Nodes)
	idx := 0
	for c := 0; c < cfg.Classes; c++ {
		count := int(float64(cfg.Nodes) * shares[c] / totalShare)
		if c == cfg.Classes-1 {
			count = cfg.Nodes - idx
		}
		for k := 0; k < count && idx < cfg.Nodes; k++ {
			labels[idx] = c
			idx++
		}
	}
	for ; idx < cfg.Nodes; idx++ {
		labels[idx] = cfg.Classes - 1
	}

	// Assign communities inside each class.
	totalComms := cfg.Classes * cfg.CommunitiesPerClass
	community := make([]int, cfg.Nodes)
	commMembers := make([][]int, totalComms)
	for i, y := range labels {
		c := y*cfg.CommunitiesPerClass + rng.Intn(cfg.CommunitiesPerClass)
		community[i] = c
		commMembers[c] = append(commMembers[c], i)
	}

	// Sample edges. Preferential weights give a heavy-ish degree tail like
	// real citation/co-purchase graphs.
	weight := make([]float64, cfg.Nodes)
	for i := range weight {
		weight[i] = 1 / (0.05 + rng.Float64()) // Pareto-ish
	}
	cum := buildSampler(weight)
	commSamplers := make([]sampler, totalComms)
	for c, members := range commMembers {
		w := make([]float64, len(members))
		for k, m := range members {
			w[k] = weight[m]
		}
		commSamplers[c] = buildSampler(w)
	}

	edgeSet := make(map[[2]int]struct{}, cfg.Edges)
	edges := make([][2]int, 0, cfg.Edges)
	attempts := 0
	maxAttempts := cfg.Edges*20 + 1000
	for len(edges) < cfg.Edges && attempts < maxAttempts {
		attempts++
		var u, v int
		if rng.Float64() < cfg.Homophily {
			c := community[cum.draw(rng)]
			members := commMembers[c]
			if len(members) < 2 {
				continue
			}
			u = members[commSamplers[c].draw(rng)]
			v = members[commSamplers[c].draw(rng)]
		} else {
			u = cum.draw(rng)
			v = cum.draw(rng)
		}
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		key := [2]int{u, v}
		if _, dup := edgeSet[key]; dup {
			continue
		}
		edgeSet[key] = struct{}{}
		edges = append(edges, key)
	}

	// Features: each class owns a contiguous signature block; communities
	// shift a sub-window inside the block so parties differ in feature
	// distribution even within a class (the paper's feature non-i.i.d).
	feats := newFeatureMatrix(cfg, labels, community, rng)

	g, err := graph.New(feats, labels, cfg.Classes, edges)
	if err != nil {
		return nil, err
	}
	return g, nil
}

// sampler draws indices proportional to fixed weights by inverse-CDF
// binary search.
type sampler struct {
	cum []float64
}

func buildSampler(w []float64) sampler {
	cum := make([]float64, len(w))
	var s float64
	for i, v := range w {
		s += v
		cum[i] = s
	}
	return sampler{cum: cum}
}

func (s sampler) draw(rng *rand.Rand) int {
	if len(s.cum) == 0 {
		return 0
	}
	target := rng.Float64() * s.cum[len(s.cum)-1]
	lo, hi := 0, len(s.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if s.cum[mid] < target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
