package dataset

import "fmt"

// Preset names for the five paper datasets (Table 2).
const (
	Cora       = "cora"
	Citeseer   = "citeseer"
	Computer   = "computer"
	Photo      = "photo"
	CoauthorCS = "coauthor-cs"
)

// presets mirrors paper Table 2: nodes, edges, classes, features. The
// remaining knobs (homophily, sparsity) are set to values typical of each
// dataset family: citation graphs are sparse and highly homophilous;
// co-purchase graphs are dense with moderate homophily.
var presets = map[string]Config{
	Cora: {
		Name: Cora, Nodes: 2708, Edges: 5429, Classes: 7, Features: 1433,
		CommunitiesPerClass: 4, Homophily: 0.81, ActiveFeatures: 18, SignalRatio: 0.65,
	},
	Citeseer: {
		Name: Citeseer, Nodes: 3312, Edges: 4732, Classes: 6, Features: 3703,
		CommunitiesPerClass: 4, Homophily: 0.74, ActiveFeatures: 32, SignalRatio: 0.65,
	},
	Computer: {
		Name: Computer, Nodes: 13381, Edges: 245778, Classes: 10, Features: 767,
		CommunitiesPerClass: 3, Homophily: 0.78, ActiveFeatures: 40, SignalRatio: 0.45,
	},
	Photo: {
		Name: Photo, Nodes: 7487, Edges: 119043, Classes: 8, Features: 745,
		CommunitiesPerClass: 3, Homophily: 0.83, ActiveFeatures: 35, SignalRatio: 0.55,
	},
	CoauthorCS: {
		Name: CoauthorCS, Nodes: 18333, Edges: 182121, Classes: 15, Features: 6805,
		CommunitiesPerClass: 4, Homophily: 0.81, ActiveFeatures: 25, SignalRatio: 0.65,
	},
}

// Names lists the preset dataset names in the paper's order.
func Names() []string {
	return []string{Cora, Citeseer, Computer, Photo, CoauthorCS}
}

// Preset returns the configuration replicating the named paper dataset.
func Preset(name string) (Config, error) {
	cfg, ok := presets[name]
	if !ok {
		return Config{}, fmt.Errorf("dataset: unknown preset %q (have %v)", name, Names())
	}
	return cfg, nil
}

// Scaled shrinks a configuration by the given divisor for quick-turnaround
// experiments: node, edge and feature counts are divided while class counts
// and distributional knobs are preserved, so algorithmic behaviour (who wins,
// trends across M) is retained at a fraction of the cost. divisor 1 returns
// the config unchanged.
func Scaled(cfg Config, divisor int) Config {
	if divisor <= 1 {
		return cfg
	}
	out := cfg
	out.Name = fmt.Sprintf("%s/%d", cfg.Name, divisor)
	out.Nodes = max(cfg.Nodes/divisor, cfg.Classes*10)
	out.Edges = max(cfg.Edges/divisor, out.Nodes)
	out.Features = max(cfg.Features/divisor, cfg.Classes*8)
	out.ActiveFeatures = max(cfg.ActiveFeatures/2, 4)
	if out.ActiveFeatures > out.Features {
		out.ActiveFeatures = out.Features
	}
	return out
}
