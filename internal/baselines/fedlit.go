package baselines

import (
	"fmt"
	"math"
	"math/rand"

	"fedomd/internal/ad"
	"fedomd/internal/fed"
	"fedomd/internal/graph"
	"fedomd/internal/mat"
	"fedomd/internal/nn"
	"fedomd/internal/sparse"
)

// FedLITClient adapts FedLIT (Xie, Xiong & Yang, WWW 2023): node
// classification over graphs with latent link-type heterogeneity. Edges are
// clustered into K latent types by k-means over the endpoint feature
// difference |x_u − x_v|; each type gets its own mean-normalised propagation
// operator and per-layer weight, and a layer aggregates relationally (one
// self path plus one neighbour path per type, as in RGCN-style convolutions):
//
//	Z^{l+1} = σ( Z^l · W^l_self + Σ_k S_k · Z^l · W^l_k )
//
// Simplifications versus the original (documented in DESIGN.md): types are
// inferred once from raw features at construction rather than re-clustered
// from embeddings every round, and parties cluster independently with no
// server-side type matching — so FedAvg may average mismatched types, the
// very failure mode the paper attributes to FedLIT at low sample counts.
type FedLITClient struct {
	name   string
	g      *graph.Graph
	ops    []*sparse.CSR // one per link type
	params *nn.Params
	opt    *nn.Adam
	rng    *rand.Rand
	opts   Options
	types  int
	hidden int
	tape   *ad.Tape
}

var _ fed.Client = (*FedLITClient)(nil)

// NewFedLIT builds a FedLIT party with the given number of latent link
// types (the original defaults to small K; we use 3 unless overridden).
func NewFedLIT(name string, g *graph.Graph, linkTypes int, opts Options, seed int64) (*FedLITClient, error) {
	opts = opts.withDefaults()
	if g.NumNodes() == 0 {
		return nil, fmt.Errorf("baselines: fedlit client %s has an empty graph", name)
	}
	if linkTypes <= 0 {
		return nil, fmt.Errorf("baselines: fedlit needs positive link types, got %d", linkTypes)
	}
	rng := rand.New(rand.NewSource(seed))

	ops, err := linkTypeOperators(g, linkTypes, rng)
	if err != nil {
		return nil, err
	}
	params := nn.NewParams()
	params.Add("w0_self", mat.Xavier(rng, g.NumFeatures(), opts.Hidden))
	for k := 0; k < linkTypes; k++ {
		params.Add(fmt.Sprintf("w0_t%d", k), mat.Xavier(rng, g.NumFeatures(), opts.Hidden))
	}
	params.Add("w1_self", mat.Xavier(rng, opts.Hidden, g.NumClasses))
	for k := 0; k < linkTypes; k++ {
		params.Add(fmt.Sprintf("w1_t%d", k), mat.Xavier(rng, opts.Hidden, g.NumClasses))
	}
	return &FedLITClient{
		name: name, g: g, ops: ops, params: params,
		opt: nn.NewAdam(opts.LR, opts.WeightDecay), rng: rng, opts: opts,
		types: linkTypes, hidden: opts.Hidden, tape: ad.NewTape(),
	}, nil
}

// linkTypeOperators clusters edges into latent types and builds one
// mean-normalised (row-stochastic) operator per type; self representation is
// handled by the separate W_self path, so no self loops are added and an
// empty type contributes nothing.
func linkTypeOperators(g *graph.Graph, k int, rng *rand.Rand) ([]*sparse.CSR, error) {
	edges := g.Edges()
	assign := make([]int, len(edges))
	if len(edges) > 0 {
		feats := make([][]float64, len(edges))
		dim := g.NumFeatures()
		for i, e := range edges {
			fu, fv := g.Features.Row(e[0]), g.Features.Row(e[1])
			d := make([]float64, dim)
			for j := range d {
				d[j] = math.Abs(fu[j] - fv[j])
			}
			feats[i] = d
		}
		assign = kMeans(feats, k, 15, rng)
	}
	ops := make([]*sparse.CSR, k)
	n := g.NumNodes()
	for t := 0; t < k; t++ {
		var entries []sparse.Coord
		for i, e := range edges {
			if assign[i] == t {
				entries = append(entries,
					sparse.Coord{Row: e[0], Col: e[1], Val: 1},
					sparse.Coord{Row: e[1], Col: e[0], Val: 1})
			}
		}
		adj, err := sparse.NewCSR(n, n, entries)
		if err != nil {
			return nil, err
		}
		ops[t] = sparse.RowSumNormalize(adj)
	}
	return ops, nil
}

// kMeans clusters points into k groups with Lloyd's algorithm and k-means++
// style seeding from rng; it returns the assignment per point.
func kMeans(points [][]float64, k, iters int, rng *rand.Rand) []int {
	n := len(points)
	assign := make([]int, n)
	if n == 0 {
		return assign
	}
	if k > n {
		k = n
	}
	dim := len(points[0])
	centers := make([][]float64, k)
	perm := rng.Perm(n)
	for c := 0; c < k; c++ {
		centers[c] = append([]float64(nil), points[perm[c]]...)
	}
	dist := func(a, b []float64) float64 {
		var s float64
		for j := range a {
			d := a[j] - b[j]
			s += d * d
		}
		return s
	}
	for it := 0; it < iters; it++ {
		changed := false
		for i, p := range points {
			best, bd := 0, math.Inf(1)
			for c := range centers {
				if d := dist(p, centers[c]); d < bd {
					best, bd = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed && it > 0 {
			break
		}
		counts := make([]int, k)
		sums := make([][]float64, k)
		for c := range sums {
			sums[c] = make([]float64, dim)
		}
		for i, p := range points {
			c := assign[i]
			counts[c]++
			for j, v := range p {
				sums[c][j] += v
			}
		}
		for c := range centers {
			if counts[c] == 0 {
				// Re-seed an empty cluster on a random point.
				centers[c] = append([]float64(nil), points[rng.Intn(n)]...)
				continue
			}
			for j := range centers[c] {
				centers[c][j] = sums[c][j] / float64(counts[c])
			}
		}
	}
	return assign
}

// Name implements fed.Client.
func (c *FedLITClient) Name() string { return c.name }

// NumSamples implements fed.Client.
func (c *FedLITClient) NumSamples() int { return len(c.g.TrainMask) }

// Params implements fed.Client.
func (c *FedLITClient) Params() *nn.Params { return c.params }

// SetParams implements fed.Client.
func (c *FedLITClient) SetParams(global *nn.Params) error { return c.params.CopyFrom(global) }

// forward records the two relational type-mixing layers. Parameter layout:
// nodes[0] = W0_self, nodes[1..types] = W0 per type, nodes[types+1] =
// W1_self, nodes[types+2..] = W1 per type.
func (c *FedLITClient) forward(tp *ad.Tape, train bool) (*ad.Node, []*ad.Node) {
	nodes := make([]*ad.Node, c.params.Len())
	for i := range nodes {
		nodes[i] = tp.Param(c.params.At(i))
	}
	layer := func(z *ad.Node, selfIdx int) *ad.Node {
		out := tp.MatMul(z, nodes[selfIdx])
		for k := 0; k < c.types; k++ {
			out = tp.Add(out, tp.SpMM(c.ops[k], tp.MatMul(z, nodes[selfIdx+1+k])))
		}
		return out
	}
	x := tp.Const(c.g.Features)
	h := tp.ReLU(layer(x, 0))
	h = tp.Dropout(h, c.opts.Dropout, c.rng, train)
	logits := layer(h, c.types+1)
	return logits, nodes
}

// TrainLocal implements fed.Client.
func (c *FedLITClient) TrainLocal(round int) (float64, error) {
	if len(c.g.TrainMask) == 0 {
		return 0, nil
	}
	var last float64
	for e := 0; e < c.opts.LocalEpochs; e++ {
		l, err := c.trainStep()
		if err != nil {
			return 0, err
		}
		last = l
	}
	return last, nil
}

// trainStep performs one gradient step on the reused tape.
func (c *FedLITClient) trainStep() (float64, error) {
	tp := c.tape
	defer tp.Release()
	logits, nodes := c.forward(tp, true)
	loss := tp.SoftmaxCrossEntropy(logits, c.g.Labels, c.g.TrainMask)
	last := loss.Value.At(0, 0)
	if err := tp.Backward(loss); err != nil {
		return 0, fmt.Errorf("baselines: %s backward: %w", c.name, err)
	}
	if err := c.opt.Step(c.params, nodes); err != nil {
		return 0, fmt.Errorf("baselines: %s optimiser: %w", c.name, err)
	}
	return last, nil
}

// Accuracy evaluates the current model on a node mask.
func (c *FedLITClient) Accuracy(mask []int) (int, int) {
	if len(mask) == 0 {
		return 0, 0
	}
	tp := c.tape
	defer tp.Release()
	logits, _ := c.forward(tp, false)
	pred := mat.ArgmaxRows(logits.Value)
	correct := 0
	for _, i := range mask {
		if pred[i] == c.g.Labels[i] {
			correct++
		}
	}
	return correct, len(mask)
}

// EvalVal implements fed.Client.
func (c *FedLITClient) EvalVal() (int, int) { return c.Accuracy(c.g.ValMask) }

// EvalTest implements fed.Client.
func (c *FedLITClient) EvalTest() (int, int) { return c.Accuracy(c.g.TestMask) }
