package baselines

import (
	"math/rand"
	"testing"

	"fedomd/internal/dataset"
	"fedomd/internal/fed"
	"fedomd/internal/graph"
	"fedomd/internal/mat"
	"fedomd/internal/nn"
	"fedomd/internal/partition"
)

func tinyGraph(t *testing.T, seed int64) *graph.Graph {
	t.Helper()
	cfg := dataset.Config{Name: "tiny", Nodes: 150, Edges: 400, Classes: 3, Features: 20,
		CommunitiesPerClass: 2, Homophily: 0.85, ActiveFeatures: 5, SignalRatio: 0.9}
	g, err := dataset.Generate(cfg, seed)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Split(rand.New(rand.NewSource(seed)), 0.1, 0.2, 0.2); err != nil {
		t.Fatal(err)
	}
	return g
}

func quickOpts() Options {
	return Options{Hidden: 16, LR: 0.03, LocalEpochs: 1}
}

func TestAllConstructorsRejectEmptyGraph(t *testing.T) {
	empty, err := graph.New(mat.New(0, 1), nil, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewFedMLP("x", empty, quickOpts(), 1); err == nil {
		t.Fatal("FedMLP accepted empty graph")
	}
	if _, err := NewScaffold("x", empty, quickOpts(), 1); err == nil {
		t.Fatal("Scaffold accepted empty graph")
	}
	if _, err := NewFedLIT("x", empty, 3, quickOpts(), 1); err == nil {
		t.Fatal("FedLIT accepted empty graph")
	}
	if _, err := NewFedSage("x", empty, quickOpts(), 1); err == nil {
		t.Fatal("FedSage accepted empty graph")
	}
}

func TestFedLITValidation(t *testing.T) {
	g := tinyGraph(t, 1)
	if _, err := NewFedLIT("x", g, 0, quickOpts(), 1); err == nil {
		t.Fatal("0 link types accepted")
	}
}

// trainImproves runs a federation and asserts the model beats random chance.
func trainImproves(t *testing.T, clients []fed.Client, classes int, rounds int) *fed.Result {
	t.Helper()
	res, err := fed.Run(fed.Config{Rounds: rounds}, clients)
	if err != nil {
		t.Fatal(err)
	}
	chance := 1.0 / float64(classes)
	if res.TestAtBestVal <= chance {
		t.Fatalf("test acc %.3f not above chance %.3f", res.TestAtBestVal, chance)
	}
	return res
}

func partiesOf(t *testing.T, g *graph.Graph, m int, seed int64) []partition.Party {
	t.Helper()
	parties, err := partition.LouvainParties(g, m, 1.0, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return parties
}

func TestFedMLPFederates(t *testing.T) {
	g := tinyGraph(t, 2)
	var clients []fed.Client
	for i, p := range partiesOf(t, g, 2, 2) {
		c, err := NewFedMLP("mlp", p.Graph, quickOpts(), int64(i+1))
		if err != nil {
			t.Fatal(err)
		}
		clients = append(clients, c)
	}
	trainImproves(t, clients, g.NumClasses, 40)
}

// paramTap snapshots every upload the server reads from a client, so tests
// can observe per-client post-training params: after the run the live params
// hold the final broadcast global, identical across clients by construction.
type paramTap struct {
	*Client
	lastUpload *nn.Params
}

func (p *paramTap) Params() *nn.Params {
	up := p.Client.Params()
	p.lastUpload = up.Clone()
	return up
}

func TestFedProxTermShrinksDrift(t *testing.T) {
	g := tinyGraph(t, 3)
	parties := partiesOf(t, g, 2, 3)
	drift := func(mu float64) float64 {
		var clients []fed.Client
		var raw []*paramTap
		for i, p := range parties {
			opts := quickOpts()
			opts.ProxMu = mu
			opts.LocalEpochs = 8
			var (
				c   *Client
				err error
			)
			if mu > 0 {
				c, err = NewFedProx("prox", p.Graph, opts, int64(i+1))
			} else {
				c, err = NewFedMLP("mlp", p.Graph, opts, int64(i+1))
			}
			if err != nil {
				t.Fatal(err)
			}
			tap := &paramTap{Client: c}
			clients = append(clients, tap)
			raw = append(raw, tap)
		}
		if _, err := fed.Run(fed.Config{Rounds: 6, Sequential: true}, clients); err != nil {
			t.Fatal(err)
		}
		// Drift: distance between the two clients' last uploaded params —
		// their post-training state before the final averaged broadcast.
		d, err := raw[0].lastUpload.L2Distance(raw[1].lastUpload)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	noProx := drift(0)
	withProx := drift(1.0) // strong proximal pull
	if withProx >= noProx {
		t.Fatalf("proximal term did not reduce client drift: %.4f vs %.4f", withProx, noProx)
	}
}

func TestScaffoldFederates(t *testing.T) {
	g := tinyGraph(t, 4)
	var clients []fed.Client
	for i, p := range partiesOf(t, g, 2, 4) {
		opts := quickOpts()
		opts.LR = 0.1 // SCAFFOLD uses plain SGD steps
		opts.LocalEpochs = 4
		c, err := NewScaffold("scaffold", p.Graph, opts, int64(i+1))
		if err != nil {
			t.Fatal(err)
		}
		clients = append(clients, c)
	}
	trainImproves(t, clients, g.NumClasses, 50)
}

func TestScaffoldControlVariatesAggregate(t *testing.T) {
	g := tinyGraph(t, 5)
	parties := partiesOf(t, g, 2, 5)
	a, err := NewScaffold("a", parties[0].Graph, quickOpts(), 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewScaffold("b", parties[1].Graph, quickOpts(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fed.Run(fed.Config{Rounds: 3}, []fed.Client{a, b}); err != nil {
		t.Fatal(err)
	}
	// After rounds, the clients' global control variates must agree (both
	// downloaded the same aggregate) and be non-zero.
	d, err := a.cGlobal.L2Distance(b.cGlobal)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Fatalf("global control variates diverge: %v", d)
	}
	if n := a.cGlobal.NumFloats(); n == 0 {
		t.Fatal("control variates empty")
	}
}

func TestGCNClientFederatesAndBeatsLocalMLPBaseline(t *testing.T) {
	g := tinyGraph(t, 6)
	var gcn []fed.Client
	for i, p := range partiesOf(t, g, 2, 6) {
		c, err := NewGCNClient("gcn", p.Graph, quickOpts(), int64(i+1))
		if err != nil {
			t.Fatal(err)
		}
		gcn = append(gcn, c)
	}
	trainImproves(t, gcn, g.NumClasses, 40)
}

func TestLocGCNRunsWithoutFederation(t *testing.T) {
	g := tinyGraph(t, 7)
	var clients []fed.Client
	for i, p := range partiesOf(t, g, 2, 7) {
		c, err := NewGCNClient("loc", p.Graph, quickOpts(), int64(i+1))
		if err != nil {
			t.Fatal(err)
		}
		clients = append(clients, c)
	}
	res, err := fed.RunLocalOnly(fed.Config{Rounds: 30}, clients)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalBytesUp != 0 {
		t.Fatal("LocGCN communicated")
	}
	if res.TestAtBestVal <= 1.0/float64(g.NumClasses) {
		t.Fatalf("LocGCN acc %.3f not above chance", res.TestAtBestVal)
	}
}

func TestFedLITOperatorsCoverAllEdges(t *testing.T) {
	g := tinyGraph(t, 8)
	c, err := NewFedLIT("lit", g, 3, quickOpts(), 9)
	if err != nil {
		t.Fatal(err)
	}
	// Off-diagonal entries across all type operators must equal 2×edges.
	var offDiag int
	for _, op := range c.ops {
		for i := 0; i < op.Rows(); i++ {
			op.RowEntries(i, func(j int, _ float64) {
				if i != j {
					offDiag++
				}
			})
		}
	}
	if offDiag != 2*g.NumEdges() {
		t.Fatalf("link-type operators cover %d directed edges, want %d", offDiag, 2*g.NumEdges())
	}
}

func TestFedLITFederates(t *testing.T) {
	g := tinyGraph(t, 9)
	var clients []fed.Client
	for i, p := range partiesOf(t, g, 2, 9) {
		c, err := NewFedLIT("lit", p.Graph, 3, quickOpts(), int64(i+1))
		if err != nil {
			t.Fatal(err)
		}
		clients = append(clients, c)
	}
	trainImproves(t, clients, g.NumClasses, 40)
}

func TestFedSageAugmentsDeprivedNodes(t *testing.T) {
	g := tinyGraph(t, 10)
	c, err := NewFedSage("sage", g, quickOpts(), 11)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumGenerated() == 0 {
		t.Fatal("no neighbours generated on a degree-skewed graph")
	}
	if c.augFeatures.Rows() != g.NumNodes()+c.NumGenerated() {
		t.Fatal("augmented feature matrix inconsistent")
	}
}

func TestFedSageFederates(t *testing.T) {
	g := tinyGraph(t, 11)
	var clients []fed.Client
	for i, p := range partiesOf(t, g, 2, 11) {
		c, err := NewFedSage("sage", p.Graph, quickOpts(), int64(i+1))
		if err != nil {
			t.Fatal(err)
		}
		clients = append(clients, c)
	}
	trainImproves(t, clients, g.NumClasses, 40)
}

func TestKMeansBasics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// Two well-separated blobs.
	var pts [][]float64
	for i := 0; i < 20; i++ {
		pts = append(pts, []float64{rng.NormFloat64() * 0.1, 0})
	}
	for i := 0; i < 20; i++ {
		pts = append(pts, []float64{10 + rng.NormFloat64()*0.1, 0})
	}
	assign := kMeans(pts, 2, 20, rng)
	for i := 1; i < 20; i++ {
		if assign[i] != assign[0] {
			t.Fatal("blob A split")
		}
	}
	for i := 21; i < 40; i++ {
		if assign[i] != assign[20] {
			t.Fatal("blob B split")
		}
	}
	if assign[0] == assign[20] {
		t.Fatal("blobs merged")
	}
	// k > n degrades gracefully.
	if got := kMeans(pts[:2], 5, 5, rng); len(got) != 2 {
		t.Fatal("k>n broken")
	}
	if got := kMeans(nil, 3, 5, rng); len(got) != 0 {
		t.Fatal("empty input broken")
	}
}
