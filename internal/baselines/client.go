// Package baselines implements the seven comparison systems of the paper's
// evaluation (§5.1): FedMLP, FedProx, SCAFFOLD, LocGCN, FedGCN, FedLIT and
// FedSage+. All expose fed.Client implementations so the same federated
// runtime drives every row of Table 4.
package baselines

import (
	"fmt"
	"math/rand"

	"fedomd/internal/ad"
	"fedomd/internal/fed"
	"fedomd/internal/graph"
	"fedomd/internal/mat"
	"fedomd/internal/nn"
	"fedomd/internal/sparse"
)

// Options configures the baseline clients. Zero values fall back to the
// defaults the paper describes (2-layer models, hidden 64).
type Options struct {
	Hidden      int
	LR          float64
	WeightDecay float64
	Dropout     float64
	LocalEpochs int
	// ProxMu enables FedProx's proximal term (μ/2)·‖w − w_global‖² when > 0.
	ProxMu float64
}

func (o Options) withDefaults() Options {
	if o.Hidden == 0 {
		o.Hidden = 64
	}
	if o.LR == 0 {
		o.LR = 0.01
	}
	if o.LocalEpochs == 0 {
		o.LocalEpochs = 1
	}
	return o
}

// Client is the shared implementation behind FedMLP, FedProx, LocGCN and
// FedGCN: a model trained with masked cross-entropy, optionally with a
// proximal term against the last received global weights.
type Client struct {
	name  string
	g     *graph.Graph
	in    nn.Input
	model nn.Model
	opt   *nn.Adam
	rng   *rand.Rand
	opts  Options
	// tape is the reusable per-client autodiff arena (the server never calls
	// a client concurrently with itself).
	tape *ad.Tape

	// globalSnapshot is the last broadcast model, anchoring FedProx's
	// proximal term.
	globalSnapshot *nn.Params
}

var _ fed.Client = (*Client)(nil)

// NewFedMLP builds the FedMLP baseline party: a 2-layer MLP with hidden
// dimension 64 that ignores graph structure.
func NewFedMLP(name string, g *graph.Graph, opts Options, seed int64) (*Client, error) {
	opts = opts.withDefaults()
	rng := rand.New(rand.NewSource(seed))
	model, err := nn.NewMLP(rng, []int{g.NumFeatures(), opts.Hidden, g.NumClasses}, opts.Dropout)
	if err != nil {
		return nil, err
	}
	return newClient(name, g, model, nn.Input{X: g.Features}, opts, rng)
}

// NewFedProx builds the FedProx baseline: FedMLP plus the proximal term. A
// non-positive mu defaults to 0.01.
func NewFedProx(name string, g *graph.Graph, opts Options, seed int64) (*Client, error) {
	if opts.ProxMu <= 0 {
		opts.ProxMu = 0.01
	}
	return NewFedMLP(name, g, opts, seed)
}

// NewGCNClient builds the 2-layer GCN party used by both LocGCN (driven with
// fed.RunLocalOnly) and FedGCN (driven with fed.Run).
func NewGCNClient(name string, g *graph.Graph, opts Options, seed int64) (*Client, error) {
	opts = opts.withDefaults()
	rng := rand.New(rand.NewSource(seed))
	model, err := nn.NewGCN(rng, []int{g.NumFeatures(), opts.Hidden, g.NumClasses}, opts.Dropout)
	if err != nil {
		return nil, err
	}
	s, err := sparse.GCNNormalize(g.Adj)
	if err != nil {
		return nil, err
	}
	return newClient(name, g, model, nn.Input{S: s, X: g.Features}, opts, rng)
}

func newClient(name string, g *graph.Graph, model nn.Model, in nn.Input, opts Options, rng *rand.Rand) (*Client, error) {
	if g.NumNodes() == 0 {
		return nil, fmt.Errorf("baselines: client %s has an empty graph", name)
	}
	return &Client{
		name:  name,
		g:     g,
		in:    in,
		model: model,
		opt:   nn.NewAdam(opts.LR, opts.WeightDecay),
		rng:   rng,
		opts:  opts,
		tape:  ad.NewTape(),
	}, nil
}

// Name implements fed.Client.
func (c *Client) Name() string { return c.name }

// NumSamples implements fed.Client.
func (c *Client) NumSamples() int { return len(c.g.TrainMask) }

// Params implements fed.Client.
func (c *Client) Params() *nn.Params { return c.model.Params() }

// SetParams implements fed.Client; it also refreshes the proximal anchor.
func (c *Client) SetParams(global *nn.Params) error {
	if err := c.model.Params().CopyFrom(global); err != nil {
		return err
	}
	if c.opts.ProxMu > 0 {
		c.globalSnapshot = global.Clone()
	}
	return nil
}

// TrainLocal implements fed.Client.
func (c *Client) TrainLocal(round int) (float64, error) {
	if len(c.g.TrainMask) == 0 {
		return 0, nil
	}
	var last float64
	for e := 0; e < c.opts.LocalEpochs; e++ {
		l, err := c.trainStep()
		if err != nil {
			return 0, err
		}
		last = l
	}
	return last, nil
}

// trainStep runs one gradient step on the reused tape and recycles its
// buffers once the optimizer has consumed the gradients.
func (c *Client) trainStep() (float64, error) {
	tp := c.tape
	defer tp.Release()
	f := c.model.Forward(tp, c.in, c.rng, true)
	loss := tp.SoftmaxCrossEntropy(f.Logits, c.g.Labels, c.g.TrainMask)
	if c.opts.ProxMu > 0 && c.globalSnapshot != nil {
		loss = tp.Add(loss, c.proxTerm(tp, f.ParamNodes))
	}
	last := loss.Value.At(0, 0)
	if err := tp.Backward(loss); err != nil {
		return 0, fmt.Errorf("baselines: %s backward: %w", c.name, err)
	}
	if err := c.opt.Step(c.model.Params(), f.ParamNodes); err != nil {
		return 0, fmt.Errorf("baselines: %s optimiser: %w", c.name, err)
	}
	return last, nil
}

// proxTerm records (μ/2)·Σ‖w − w_global‖²_F on the tape.
func (c *Client) proxTerm(tp *ad.Tape, nodes []*ad.Node) *ad.Node {
	var term *ad.Node
	for i, n := range nodes {
		anchor := tp.Const(c.globalSnapshot.At(i))
		sq := tp.SumSquares(tp.Sub(n, anchor))
		if term == nil {
			term = sq
		} else {
			term = tp.Add(term, sq)
		}
	}
	return tp.Scale(c.opts.ProxMu/2, term)
}

// Accuracy evaluates the current model on a node mask.
func (c *Client) Accuracy(mask []int) (int, int) {
	if len(mask) == 0 {
		return 0, 0
	}
	tp := c.tape
	defer tp.Release()
	f := c.model.Forward(tp, c.in, c.rng, false)
	pred := mat.ArgmaxRows(f.Logits.Value)
	correct := 0
	for _, i := range mask {
		if pred[i] == c.g.Labels[i] {
			correct++
		}
	}
	return correct, len(mask)
}

// EvalVal implements fed.Client.
func (c *Client) EvalVal() (int, int) { return c.Accuracy(c.g.ValMask) }

// EvalTest implements fed.Client.
func (c *Client) EvalTest() (int, int) { return c.Accuracy(c.g.TestMask) }
