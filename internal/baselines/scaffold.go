package baselines

import (
	"fmt"
	"math/rand"

	"fedomd/internal/ad"
	"fedomd/internal/fed"
	"fedomd/internal/graph"
	"fedomd/internal/mat"
	"fedomd/internal/nn"
)

// ScaffoldClient implements SCAFFOLD (Karimireddy et al. 2020) on the FedMLP
// base model: each local SGD step uses the variance-reduced gradient
// g − c_i + c, and after local training the client control variate is
// refreshed with Option II,
//
//	c_i ← c_i − c + (w_global − w_local)/(K·η),
//
// and exchanged through the runtime's auxiliary-state channel.
type ScaffoldClient struct {
	name string
	g    *graph.Graph
	in   nn.Input
	mlp  *nn.MLP
	rng  *rand.Rand
	opts Options
	tape *ad.Tape

	ci          *nn.Params // client control variate
	cGlobal     *nn.Params // server control variate
	roundAnchor *nn.Params // weights at round start
}

var (
	_ fed.Client    = (*ScaffoldClient)(nil)
	_ fed.AuxClient = (*ScaffoldClient)(nil)
)

// NewScaffold builds a SCAFFOLD party.
func NewScaffold(name string, g *graph.Graph, opts Options, seed int64) (*ScaffoldClient, error) {
	opts = opts.withDefaults()
	if g.NumNodes() == 0 {
		return nil, fmt.Errorf("baselines: scaffold client %s has an empty graph", name)
	}
	rng := rand.New(rand.NewSource(seed))
	mlp, err := nn.NewMLP(rng, []int{g.NumFeatures(), opts.Hidden, g.NumClasses}, opts.Dropout)
	if err != nil {
		return nil, err
	}
	zero := func() *nn.Params {
		p := mlp.Params().Clone()
		p.Zero()
		return p
	}
	return &ScaffoldClient{
		name: name, g: g, in: nn.Input{X: g.Features}, mlp: mlp, rng: rng, opts: opts,
		ci: zero(), cGlobal: zero(), tape: ad.NewTape(),
	}, nil
}

// Name implements fed.Client.
func (s *ScaffoldClient) Name() string { return s.name }

// NumSamples implements fed.Client.
func (s *ScaffoldClient) NumSamples() int { return len(s.g.TrainMask) }

// Params implements fed.Client.
func (s *ScaffoldClient) Params() *nn.Params { return s.mlp.Params() }

// SetParams implements fed.Client, snapshotting the round anchor.
func (s *ScaffoldClient) SetParams(global *nn.Params) error {
	if err := s.mlp.Params().CopyFrom(global); err != nil {
		return err
	}
	s.roundAnchor = global.Clone()
	return nil
}

// TrainLocal implements fed.Client with variance-reduced SGD steps.
func (s *ScaffoldClient) TrainLocal(round int) (float64, error) {
	if len(s.g.TrainMask) == 0 {
		return 0, nil
	}
	params := s.mlp.Params()
	var last float64
	steps := s.opts.LocalEpochs
	for e := 0; e < steps; e++ {
		l, err := s.trainStep(params)
		if err != nil {
			return 0, err
		}
		last = l
	}
	// Option II control-variate refresh.
	if s.roundAnchor != nil {
		scale := 1 / (float64(steps) * s.opts.LR)
		for i := 0; i < s.ci.Len(); i++ {
			ci := s.ci.At(i)
			ci.SubInPlace(s.cGlobal.At(i))
			diff := mat.GetDense(ci.Rows(), ci.Cols())
			mat.SubInto(diff, s.roundAnchor.At(i), params.At(i))
			ci.AXPY(scale, diff)
			mat.PutDense(diff)
		}
	}
	return last, nil
}

// trainStep performs one variance-reduced step on the reused tape.
func (s *ScaffoldClient) trainStep(params *nn.Params) (float64, error) {
	tp := s.tape
	defer tp.Release()
	f := s.mlp.Forward(tp, s.in, s.rng, true)
	loss := tp.SoftmaxCrossEntropy(f.Logits, s.g.Labels, s.g.TrainMask)
	last := loss.Value.At(0, 0)
	if err := tp.Backward(loss); err != nil {
		return 0, fmt.Errorf("baselines: %s backward: %w", s.name, err)
	}
	// w ← w − η (g − c_i + c), plus decoupled weight decay. The corrected
	// gradient lives in a pooled scratch buffer (zeroed on vend).
	for i := 0; i < params.Len(); i++ {
		w := params.At(i)
		if s.opts.WeightDecay != 0 {
			w.ScaleInPlace(1 - s.opts.LR*s.opts.WeightDecay)
		}
		corrected := mat.GetDense(w.Rows(), w.Cols())
		if g := f.ParamNodes[i].Grad; g != nil {
			corrected.AddInPlace(g)
		}
		corrected.SubInPlace(s.ci.At(i))
		corrected.AddInPlace(s.cGlobal.At(i))
		w.AXPY(-s.opts.LR, corrected)
		mat.PutDense(corrected)
	}
	return last, nil
}

// UploadAux implements fed.AuxClient: the server averages client control
// variates into c.
func (s *ScaffoldClient) UploadAux() *nn.Params { return s.ci.Clone() }

// DownloadAux implements fed.AuxClient.
func (s *ScaffoldClient) DownloadAux(global *nn.Params) error {
	return s.cGlobal.CopyFrom(global)
}

// Accuracy evaluates the current model on a node mask.
func (s *ScaffoldClient) Accuracy(mask []int) (int, int) {
	if len(mask) == 0 {
		return 0, 0
	}
	tp := s.tape
	defer tp.Release()
	f := s.mlp.Forward(tp, s.in, s.rng, false)
	pred := mat.ArgmaxRows(f.Logits.Value)
	correct := 0
	for _, i := range mask {
		if pred[i] == s.g.Labels[i] {
			correct++
		}
	}
	return correct, len(mask)
}

// EvalVal implements fed.Client.
func (s *ScaffoldClient) EvalVal() (int, int) { return s.Accuracy(s.g.ValMask) }

// EvalTest implements fed.Client.
func (s *ScaffoldClient) EvalTest() (int, int) { return s.Accuracy(s.g.TestMask) }
