package baselines

import (
	"fmt"
	"math/rand"
	"sort"

	"fedomd/internal/ad"
	"fedomd/internal/fed"
	"fedomd/internal/graph"
	"fedomd/internal/mat"
	"fedomd/internal/nn"
	"fedomd/internal/sparse"
)

// FedSageClient adapts FedSage+ (Zhang et al., NeurIPS 2021): subgraph
// federated learning with missing-neighbour generation. The partition severs
// cross-party edges; FedSage+ compensates by (1) training a neighbour
// generator that predicts plausible neighbour features from a node's own
// features, (2) attaching one generated neighbour to every structurally
// deprived node (local degree below the local median, the signature of a
// node that lost cross-party edges), and (3) classifying with a two-layer
// GraphSAGE convolution Z' = σ(Z·W_self + S_mean·Z·W_nbr) over the augmented
// graph.
//
// Simplification versus the original (documented in DESIGN.md): the
// generator is a linear map trained locally by reconstruction of observed
// neighbour means instead of the federated GAN-style training; generated
// nodes are unlabelled and excluded from evaluation.
type FedSageClient struct {
	name string
	g    *graph.Graph // original local graph (masks refer to it)

	augFeatures *mat.Dense  // original + generated node features
	augOp       *sparse.CSR // mean-aggregation operator over augmented graph
	numOrig     int

	params *nn.Params
	opt    *nn.Adam
	rng    *rand.Rand
	opts   Options
	hidden int
	tape   *ad.Tape
	labels []int // g.Labels zero-padded to the augmented node count
}

var _ fed.Client = (*FedSageClient)(nil)

// NewFedSage builds a FedSage+ party: trains the neighbour generator,
// augments the local graph, and initialises the GraphSAGE classifier.
func NewFedSage(name string, g *graph.Graph, opts Options, seed int64) (*FedSageClient, error) {
	opts = opts.withDefaults()
	if g.NumNodes() == 0 {
		return nil, fmt.Errorf("baselines: fedsage client %s has an empty graph", name)
	}
	rng := rand.New(rand.NewSource(seed))

	gen := trainNeighborGenerator(g, rng)
	augFeatures, augEdges, numOrig := augmentGraph(g, gen, rng)

	var entries []sparse.Coord
	for _, e := range augEdges {
		entries = append(entries,
			sparse.Coord{Row: e[0], Col: e[1], Val: 1},
			sparse.Coord{Row: e[1], Col: e[0], Val: 1})
	}
	adj, err := sparse.NewCSR(augFeatures.Rows(), augFeatures.Rows(), entries)
	if err != nil {
		return nil, err
	}
	op := sparse.RowSumNormalize(adj)

	params := nn.NewParams()
	params.Add("w_self0", mat.Xavier(rng, g.NumFeatures(), opts.Hidden))
	params.Add("w_nbr0", mat.Xavier(rng, g.NumFeatures(), opts.Hidden))
	params.Add("w_self1", mat.Xavier(rng, opts.Hidden, g.NumClasses))
	params.Add("w_nbr1", mat.Xavier(rng, opts.Hidden, g.NumClasses))

	// Labels for generated nodes never enter: the train mask indexes
	// originals, so the padding values are inert.
	labels := make([]int, augFeatures.Rows())
	copy(labels, g.Labels)

	return &FedSageClient{
		name: name, g: g,
		augFeatures: augFeatures, augOp: op, numOrig: numOrig,
		params: params, opt: nn.NewAdam(opts.LR, opts.WeightDecay),
		rng: rng, opts: opts, hidden: opts.Hidden,
		tape: ad.NewTape(), labels: labels,
	}, nil
}

// trainNeighborGenerator fits the linear generator X_u ↦ mean(X_neighbours)
// by Adam on the reconstruction MSE over nodes that still have neighbours.
func trainNeighborGenerator(g *graph.Graph, rng *rand.Rand) *mat.Dense {
	f := g.NumFeatures()
	var withNbrs []int
	for i := 0; i < g.NumNodes(); i++ {
		if g.Degree(i) > 0 {
			withNbrs = append(withNbrs, i)
		}
	}
	w := mat.Xavier(rng, f, f)
	if len(withNbrs) == 0 {
		return mat.Eye(f) // no structure to learn from: echo the node itself
	}
	x := g.Features.SelectRows(withNbrs)
	target := mat.New(len(withNbrs), f)
	for row, i := range withNbrs {
		trow := target.Row(row)
		nbrs := g.Neighbors(i)
		for _, j := range nbrs {
			for k, v := range g.Features.Row(j) {
				trow[k] += v
			}
		}
		inv := 1 / float64(len(nbrs))
		for k := range trow {
			trow[k] *= inv
		}
	}
	params := nn.NewParams()
	params.Add("w", w)
	opt := nn.NewAdam(0.01, 0)
	scale := 1 / float64(len(withNbrs)*f)
	tp := ad.NewTape()
	for step := 0; step < 60; step++ {
		wn := tp.Param(w)
		pred := tp.MatMul(tp.Const(x), wn)
		loss := tp.Scale(scale, tp.SumSquares(tp.Sub(pred, tp.Const(target))))
		err := tp.Backward(loss)
		if err == nil {
			err = opt.Step(params, []*ad.Node{wn})
		}
		tp.Release()
		if err != nil {
			break
		}
	}
	return w
}

// augmentGraph attaches one generated neighbour to every node whose degree
// is strictly below the local median degree. Generated features are the
// generator output plus small Gaussian exploration noise (the GAN noise of
// the original).
func augmentGraph(g *graph.Graph, gen *mat.Dense, rng *rand.Rand) (*mat.Dense, [][2]int, int) {
	n := g.NumNodes()
	degs := make([]int, n)
	for i := range degs {
		degs[i] = g.Degree(i)
	}
	sorted := append([]int(nil), degs...)
	sort.Ints(sorted)
	median := sorted[n/2]

	var deprived []int
	for i, d := range degs {
		if d < median {
			deprived = append(deprived, i)
		}
	}
	f := g.NumFeatures()
	aug := mat.New(n+len(deprived), f)
	for i := 0; i < n; i++ {
		copy(aug.Row(i), g.Features.Row(i))
	}
	edges := g.Edges()
	genFeats := mat.MatMul(g.Features.SelectRows(deprived), gen)
	for k, u := range deprived {
		newID := n + k
		row := aug.Row(newID)
		for j, v := range genFeats.Row(k) {
			row[j] = v + 0.01*rng.NormFloat64()
		}
		edges = append(edges, [2]int{u, newID})
	}
	return aug, edges, n
}

// Name implements fed.Client.
func (c *FedSageClient) Name() string { return c.name }

// NumSamples implements fed.Client.
func (c *FedSageClient) NumSamples() int { return len(c.g.TrainMask) }

// Params implements fed.Client.
func (c *FedSageClient) Params() *nn.Params { return c.params }

// SetParams implements fed.Client.
func (c *FedSageClient) SetParams(global *nn.Params) error { return c.params.CopyFrom(global) }

// NumGenerated reports how many neighbour nodes were synthesised.
func (c *FedSageClient) NumGenerated() int { return c.augFeatures.Rows() - c.numOrig }

// forward records the two GraphSAGE layers on the augmented graph.
func (c *FedSageClient) forward(tp *ad.Tape, train bool) (*ad.Node, []*ad.Node) {
	nodes := make([]*ad.Node, c.params.Len())
	for i := range nodes {
		nodes[i] = tp.Param(c.params.At(i))
	}
	z := tp.Const(c.augFeatures)
	h := tp.Add(tp.MatMul(z, nodes[0]), tp.SpMM(c.augOp, tp.MatMul(z, nodes[1])))
	h = tp.ReLU(h)
	h = tp.Dropout(h, c.opts.Dropout, c.rng, train)
	logits := tp.Add(tp.MatMul(h, nodes[2]), tp.SpMM(c.augOp, tp.MatMul(h, nodes[3])))
	return logits, nodes
}

// TrainLocal implements fed.Client; the loss is computed on original
// (labelled) nodes only.
func (c *FedSageClient) TrainLocal(round int) (float64, error) {
	if len(c.g.TrainMask) == 0 {
		return 0, nil
	}
	var last float64
	for e := 0; e < c.opts.LocalEpochs; e++ {
		l, err := c.trainStep()
		if err != nil {
			return 0, err
		}
		last = l
	}
	return last, nil
}

// trainStep performs one gradient step on the reused tape.
func (c *FedSageClient) trainStep() (float64, error) {
	tp := c.tape
	defer tp.Release()
	logits, nodes := c.forward(tp, true)
	loss := tp.SoftmaxCrossEntropy(logits, c.labels, c.g.TrainMask)
	last := loss.Value.At(0, 0)
	if err := tp.Backward(loss); err != nil {
		return 0, fmt.Errorf("baselines: %s backward: %w", c.name, err)
	}
	if err := c.opt.Step(c.params, nodes); err != nil {
		return 0, fmt.Errorf("baselines: %s optimiser: %w", c.name, err)
	}
	return last, nil
}

// Accuracy evaluates on a mask over original nodes.
func (c *FedSageClient) Accuracy(mask []int) (int, int) {
	if len(mask) == 0 {
		return 0, 0
	}
	tp := c.tape
	defer tp.Release()
	logits, _ := c.forward(tp, false)
	pred := mat.ArgmaxRows(logits.Value)
	correct := 0
	for _, i := range mask {
		if pred[i] == c.g.Labels[i] {
			correct++
		}
	}
	return correct, len(mask)
}

// EvalVal implements fed.Client.
func (c *FedSageClient) EvalVal() (int, int) { return c.Accuracy(c.g.ValMask) }

// EvalTest implements fed.Client.
func (c *FedSageClient) EvalTest() (int, int) { return c.Accuracy(c.g.TestMask) }
