// Package fedomd is the public API of the FedOMD reproduction: graph
// federated learning with center-moment constraints for node classification
// (Tang et al., ICPP Workshops 2024).
//
// The package wires together the internal substrates — synthetic dataset
// generation, Louvain partitioning into non-i.i.d parties, the orthogonal
// GCN with CMD constraints, the seven baselines, and the federated runtime —
// behind a small surface:
//
//	g, _ := fedomd.GenerateDataset("cora", 1, seed)
//	parties, _ := fedomd.Partition(g, 3, 1.0, seed)
//	res, _ := fedomd.TrainFedOMD(parties, fedomd.DefaultConfig(), fedomd.RunOptions{Rounds: 200}, seed)
//	fmt.Println(res.TestAtBestVal)
//
// For regenerating the paper's tables and figures, see NewExperiments and
// cmd/experiments.
package fedomd

import (
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"time"

	"fedomd/internal/chaos"
	"fedomd/internal/codec"
	"fedomd/internal/core"
	"fedomd/internal/dataset"
	"fedomd/internal/experiments"
	"fedomd/internal/fed"
	"fedomd/internal/graph"
	"fedomd/internal/obs"
	"fedomd/internal/partition"
	"fedomd/internal/telemetry"
)

// Re-exported core types. See the internal packages for full documentation.
type (
	// Graph is an undirected attributed graph with train/val/test masks.
	Graph = graph.Graph
	// Party is one client's local subgraph plus its original node ids.
	Party = partition.Party
	// Config holds FedOMD's hyper-parameters (eq. 12's α and β, depth, …).
	Config = core.Config
	// Client is a federated participant; FedOMD and all baselines satisfy it.
	Client = fed.Client
	// Result summarises a federated run (history, best accuracy, traffic).
	Result = fed.Result
	// RoundStats is one communication round's record.
	RoundStats = fed.RoundStats
	// DatasetConfig parameterises the synthetic dataset generator.
	DatasetConfig = dataset.Config
	// Recorder receives run telemetry (counters, gauges, histograms, span
	// timers); see RunOptions.Recorder. Nil always means "off, for free".
	Recorder = telemetry.Recorder
	// TelemetryAggregator is the in-memory Recorder; its Report method
	// renders the per-run timing/comms table.
	TelemetryAggregator = telemetry.Aggregator
	// TraceWriter is the JSONL trace-event Recorder.
	TraceWriter = telemetry.JSONL
	// ModelSpec is the versioned model-architecture header stamped onto
	// checkpoints so they can be rebuilt standalone (see internal/serve).
	ModelSpec = fed.ModelSpec
	// FailurePolicy selects how the runtime reacts to a failing party
	// (FailFast, DropRound, or Quarantine).
	FailurePolicy = fed.FailurePolicy
	// QuorumPolicy selects between aborting and skipping a round when fewer
	// than MinClients parties survive it.
	QuorumPolicy = fed.QuorumPolicy
	// ChaosOptions schedules deterministic fault injection over the client
	// fleet (see RunOptions.Chaos).
	ChaosOptions = chaos.FleetConfig
	// Tracer emits distributed-tracing spans (rounds, phases, per-party
	// train/upload, codec encode/decode, RPC calls) onto a trace stream.
	// A nil *Tracer is inert — every method is a no-op.
	Tracer = obs.Tracer
	// SpanContext identifies a span (trace ID + span ID) for parenting.
	SpanContext = obs.SpanContext
	// RoundObserver receives one RoundObservation after every completed
	// round (see RunOptions.Observer); Health and Dashboard implement it.
	RoundObserver = obs.RoundObserver
	// RoundObservation is the per-round digest handed to observers.
	RoundObservation = obs.RoundObservation
	// Health is the run-health rule engine (non-finite screens, accuracy
	// regression, straggler skew, quarantine growth, codec resets).
	Health = obs.Health
	// HealthConfig tunes the health rules' thresholds.
	HealthConfig = obs.HealthConfig
	// HealthEvent is one warn/critical finding from the health monitors.
	HealthEvent = obs.HealthEvent
	// Dashboard serves the live run dashboard (SSE-fed single page).
	Dashboard = obs.Dashboard
	// BuildInfo captures version/toolchain/run metadata for exposition.
	BuildInfo = obs.BuildInfo
	// HTTPServer is a bound HTTP server with graceful Shutdown — the shared
	// lifecycle for the debug, dashboard, and serving listeners.
	HTTPServer = obs.HTTPServer
)

// Failure and quorum policies, re-exported for RunOptions.
const (
	FailFast   = fed.FailFast
	DropRound  = fed.DropRound
	Quarantine = fed.Quarantine

	QuorumAbort = fed.QuorumAbort
	QuorumSkip  = fed.QuorumSkip
)

// ErrQuorumLost reports a run aborted because fewer than MinClients parties
// survived a round; match with errors.Is.
var ErrQuorumLost = fed.ErrQuorumLost

// ParseFailurePolicy maps a flag spelling ("failfast", "drop-round",
// "quarantine", …) to a FailurePolicy.
func ParseFailurePolicy(s string) (FailurePolicy, error) { return fed.ParseFailurePolicy(s) }

// NewTelemetryAggregator returns an in-memory telemetry sink whose Report
// renders per-phase timing (count, total, mean, p50, p95) and comms totals.
func NewTelemetryAggregator() *TelemetryAggregator { return telemetry.NewAggregator() }

// NewTraceWriter returns a Recorder streaming one JSON event per line to w.
// Close (or Flush) it when the run ends.
func NewTraceWriter(w io.Writer) *TraceWriter { return telemetry.NewJSONL(w) }

// MultiRecorder fans telemetry out to several recorders (e.g. an aggregator
// for the report plus a trace writer).
func MultiRecorder(rs ...Recorder) Recorder { return telemetry.Multi(rs...) }

// PublishTelemetryExpvar exposes the aggregator (and the process-global
// autodiff/SpMM counters) on expvar's /debug/vars for live profiling.
func PublishTelemetryExpvar(a *TelemetryAggregator) { telemetry.PublishExpvar(a) }

// NewTracer returns a Tracer streaming span and event records to the trace
// writer (interleaved with its telemetry events). A nil writer returns a nil
// Tracer, which is valid and free everywhere a *Tracer is accepted.
func NewTracer(sink *TraceWriter) *Tracer {
	if sink == nil {
		return nil
	}
	return obs.NewTracer(sink)
}

// NewRunID returns a fresh random run identifier (16 hex digits) for
// RunOptions.RunID and trace headers.
func NewRunID() string { return obs.NewRunID() }

// NewHealthMonitor returns the default run-health rule engine. Events are
// emitted onto the tracer's stream (when non-nil), counted on the recorder
// ("obs/health_warn", "obs/health_critical"), and retained for Events().
func NewHealthMonitor(cfg HealthConfig, tr *Tracer, rec Recorder) *Health {
	return obs.NewHealth(cfg, tr, rec)
}

// NewDashboard returns the live-run dashboard observer; serve its Handler and
// register it (after the health monitor) via MultiObserver.
func NewDashboard(h *Health) *Dashboard { return obs.NewDashboard(h) }

// MultiObserver fans round observations out to several observers in order
// (put Health before Dashboard so the page sees fresh events).
func MultiObserver(os ...RoundObserver) RoundObserver { return obs.MultiRoundObserver(os) }

// CollectBuildInfo captures the binary's module version and toolchain plus
// the run's codec and failure-policy settings.
func CollectBuildInfo(codecName, policy string) BuildInfo {
	return obs.CollectBuildInfo(codecName, policy)
}

// MetricsHandler serves the aggregator (plus process-global counters) in
// Prometheus text exposition format. build may be nil.
func MetricsHandler(a *TelemetryAggregator, build *BuildInfo) http.Handler {
	return obs.MetricsHandler(a, build)
}

// WriteExposition renders the aggregator's state as Prometheus text format.
func WriteExposition(w io.Writer, a *TelemetryAggregator, build *BuildInfo) {
	obs.WriteExposition(w, a, build)
}

// LintExposition validates Prometheus text-format output (names, duplicate
// series, histogram bucket invariants), returning one message per problem.
func LintExposition(r io.Reader) []string { return obs.LintExposition(r) }

// StartHTTPServer binds addr synchronously and serves handler in the
// background; the returned server's Shutdown drains in-flight requests, so
// SIGINT handlers and tests don't leak listeners.
func StartHTTPServer(addr string, handler http.Handler) (*HTTPServer, error) {
	return obs.StartHTTPServer(addr, handler)
}

// Model names accepted by TrainBaseline, in the paper's table order.
const (
	FedMLP   = experiments.ModelFedMLP
	SCAFFOLD = experiments.ModelSCAFFOLD
	FedProx  = experiments.ModelFedProx
	LocGCN   = experiments.ModelLocGCN
	FedGCN   = experiments.ModelFedGCN
	FedLIT   = experiments.ModelFedLIT
	FedSage  = experiments.ModelFedSage
	FedOMD   = experiments.ModelFedOMD
)

// Models lists every trainable model name.
func Models() []string { return experiments.ModelNames() }

// Datasets lists the five paper dataset presets.
func Datasets() []string { return dataset.Names() }

// DefaultConfig returns the paper's FedOMD hyper-parameters (§5.1):
// α = 0.0005, β = 10, 2 hidden layers of width 64, CMD order 5.
func DefaultConfig() Config { return core.DefaultConfig() }

// GenerateDataset builds the named synthetic dataset (see Datasets) scaled
// down by divisor (1 = the paper's Table 2 size) and applies the paper's
// 1%/20%/20% stratified train/val/test split.
func GenerateDataset(name string, divisor int, seed int64) (*Graph, error) {
	cfg, err := dataset.Preset(name)
	if err != nil {
		return nil, err
	}
	return GenerateCustom(dataset.Scaled(cfg, divisor), seed)
}

// GenerateCustom builds a dataset from an explicit generator configuration
// and applies the standard split.
func GenerateCustom(cfg DatasetConfig, seed int64) (*Graph, error) {
	g, err := dataset.Generate(cfg, seed)
	if err != nil {
		return nil, err
	}
	if err := g.Split(rand.New(rand.NewSource(seed+1)), 0.01, 0.2, 0.2); err != nil {
		return nil, err
	}
	return g, nil
}

// SaveGraph writes a graph (with masks) to path as sparse JSON.
func SaveGraph(g *Graph, path string) error { return g.SaveFile(path) }

// LoadGraph reads a graph written by SaveGraph.
func LoadGraph(path string) (*Graph, error) { return graph.LoadFile(path) }

// Partition cuts a global graph into m non-i.i.d parties with the Louvain
// algorithm at the given resolution (the paper's "Louvain-cut", §5.1).
func Partition(g *Graph, m int, resolution float64, seed int64) ([]Party, error) {
	return partition.LouvainParties(g, m, resolution, rand.New(rand.NewSource(seed)))
}

// PartitionRandom splits nodes uniformly at random into m parties — the
// near-i.i.d control setting.
func PartitionRandom(g *Graph, m int, seed int64) ([]Party, error) {
	return partition.RandomParties(g, m, rand.New(rand.NewSource(seed)))
}

// PartitionBalanced grows m size-balanced, locally connected parties by
// multi-source BFS — between PartitionRandom and Partition (Louvain) on the
// non-i.i.d spectrum.
func PartitionBalanced(g *Graph, m int, seed int64) ([]Party, error) {
	return partition.BalancedParties(g, m, rand.New(rand.NewSource(seed)))
}

// NonIIDScore quantifies how heterogeneous a partition's label
// distributions are (0 = i.i.d; toward 1 = heavily skewed) — the phenomenon
// of Figure 4.
func NonIIDScore(parties []Party, numClasses int) float64 {
	return partition.NonIIDScore(parties, numClasses)
}

// RunOptions controls federated training.
type RunOptions struct {
	// Rounds is the number of communication rounds (default 200).
	Rounds int
	// Patience enables early stopping on validation accuracy (0 = off).
	Patience int
	// Sequential disables concurrent client training.
	Sequential bool
	// EvalEvery measures validation/test accuracy every N rounds; 0 or 1
	// evaluates every round.
	EvalEvery int
	// Recorder receives the run's telemetry: per-round phase spans,
	// per-client train-duration histograms and communication counters
	// (plus RPC metrics for distributed runs). Nil disables telemetry.
	Recorder Recorder
	// Tracer emits distributed-tracing spans for the run (round, phases,
	// per-party train/upload, codec encode/decode; RPC spans on distributed
	// runs). Nil disables tracing for free.
	Tracer *Tracer
	// Observer receives a RoundObservation after every completed round —
	// typically MultiObserver(NewHealthMonitor(...), NewDashboard(...)).
	// Nil disables observation.
	Observer RoundObserver
	// RunID tags the run's Result, trace spans, and JSONL header; empty
	// means a fresh NewRunID is generated.
	RunID string

	// Policy selects the failure-handling mode; the zero value FailFast
	// aborts on the first party error, exactly as before.
	Policy FailurePolicy
	// ClientTimeout bounds every individual party call; an expiry counts as
	// a failure under Policy. 0 disables the bound.
	ClientTimeout time.Duration
	// MinClients is the per-round survivor quorum (values below 1 mean 1).
	MinClients int
	// QuorumPolicy picks between aborting (default) and skipping the round
	// when quorum is lost.
	QuorumPolicy QuorumPolicy
	// MaxStrikes and CooldownRounds tune the Quarantine policy's benching.
	MaxStrikes     int
	CooldownRounds int

	// CheckpointPath persists a server snapshot every CheckpointEvery rounds
	// (default 10 when only the path is set); ResumePath restarts from one.
	CheckpointPath  string
	CheckpointEvery int
	ResumePath      string
	// Spec seeds the checkpoint model header with dataset identity
	// (Dataset/Divisor/DataSeed); TrainFedOMD fills the architecture
	// fields itself. Nil still gets an architecture-only header.
	Spec *ModelSpec

	// Chaos, when set, wraps every client in a deterministic fault injector
	// before the run starts (in-process runs only: TrainFedOMD and
	// TrainFedOMDPrivate).
	Chaos *ChaosOptions

	// Codec selects the parameter-payload compression tier: "" or "raw"
	// (off), "delta" (lossless XOR-delta; bit-identical results), "float32",
	// "quant", or the shorthands "q8"/"q4" (uniform quantization with error
	// feedback). Lossy tiers trade a bounded accuracy drift for a 4–8×
	// traffic cut; see DESIGN.md §10.
	Codec string
	// QuantBits is the quantization width for Codec == "quant" (8 or 4;
	// 0 means 8). The "q8"/"q4" spellings set it implicitly.
	QuantBits int
	// TopK, when in (0, 1), additionally keeps only that fraction of each
	// tensor's delta entries per round (largest by magnitude); the remainder
	// rides the error-feedback residual into later rounds.
	TopK float64

	// Aggregation selects the round topology: "" or "sync" (barriered
	// rounds, the historical behavior) or "async" (buffered no-barrier
	// rounds with staleness-discounted folding; see DESIGN.md §14).
	Aggregation string
	// BufferK is the async buffer threshold (0 = ⌈M/2⌉), MaxStaleness the
	// eviction bound in rounds (0 = 8), StalenessAlpha the discount
	// exponent (0 = 1), and BufferTimeout the per-round collect deadline
	// (0 = none). All are ignored in sync mode.
	BufferK        int
	MaxStaleness   int
	StalenessAlpha float64
	BufferTimeout  time.Duration
}

func (o RunOptions) withDefaults() RunOptions {
	if o.Rounds == 0 {
		o.Rounds = 200
	}
	return o
}

// fedConfig lowers the options to the runtime's Config, loading the resume
// checkpoint and installing the file checkpointer when paths are set.
func (o RunOptions) fedConfig() (fed.Config, error) {
	cfg := fed.Config{
		Rounds:          o.Rounds,
		Patience:        o.Patience,
		Sequential:      o.Sequential,
		EvalEvery:       o.EvalEvery,
		Recorder:        o.Recorder,
		Policy:          o.Policy,
		ClientTimeout:   o.ClientTimeout,
		MinClients:      o.MinClients,
		QuorumPolicy:    o.QuorumPolicy,
		MaxStrikes:      o.MaxStrikes,
		CooldownRounds:  o.CooldownRounds,
		CheckpointEvery: o.CheckpointEvery,
		Spec:            o.Spec,
		Tracer:          o.Tracer,
		Observer:        o.Observer,
		RunID:           o.RunID,
	}
	co, err := codec.Parse(o.Codec, o.QuantBits, o.TopK)
	if err != nil {
		return cfg, err
	}
	cfg.Codec = co
	agg, err := fed.ParseAggregation(o.Aggregation)
	if err != nil {
		return cfg, err
	}
	cfg.Aggregation = agg
	cfg.BufferK = o.BufferK
	cfg.MaxStaleness = o.MaxStaleness
	cfg.StalenessAlpha = o.StalenessAlpha
	cfg.BufferTimeout = o.BufferTimeout
	if o.CheckpointPath != "" {
		cfg.CheckpointWriter = fed.FileCheckpointer(o.CheckpointPath)
		if cfg.CheckpointEvery <= 0 {
			cfg.CheckpointEvery = 10
		}
	}
	if o.ResumePath != "" {
		ck, err := fed.LoadCheckpointFile(o.ResumePath)
		if err != nil {
			return cfg, fmt.Errorf("fedomd: loading resume checkpoint: %w", err)
		}
		cfg.Resume = ck
	}
	return cfg, nil
}

// wrapChaos applies the configured fault injection to the fleet, defaulting
// the injectors' trace annotations onto the run's tracer.
func (o RunOptions) wrapChaos(clients []fed.Client) []fed.Client {
	if o.Chaos == nil {
		return clients
	}
	cc := *o.Chaos
	if cc.Tracer == nil {
		cc.Tracer = o.Tracer
	}
	return chaos.WrapFleet(clients, cc)
}

// fedOMDSpec stamps the architecture a FedOMD run trains onto the options'
// checkpoint header, preserving any dataset identity the caller seeded.
func fedOMDSpec(parties []Party, cfg Config, opts RunOptions) *ModelSpec {
	spec := &ModelSpec{}
	if opts.Spec != nil {
		*spec = *opts.Spec
	}
	spec.SpecVersion = fed.SpecVersion
	spec.Model = "fedomd"
	for _, p := range parties {
		if p.Graph.NumNodes() > 0 {
			spec.Features = p.Graph.NumFeatures()
			spec.Classes = p.Graph.NumClasses
			break
		}
	}
	spec.Hidden = cfg.Hidden
	spec.HiddenLayers = cfg.HiddenLayers
	spec.Dropout = cfg.Dropout
	spec.SpectralBound = true
	return spec
}

// TrainFedOMD builds one FedOMD client per party and runs federated
// training under Algorithm 1 (FedAvg + the 2-round moment exchange).
func TrainFedOMD(parties []Party, cfg Config, opts RunOptions, seed int64) (*Result, error) {
	opts = opts.withDefaults()
	opts.Spec = fedOMDSpec(parties, cfg, opts)
	var clients []fed.Client
	idx := 0
	for _, p := range parties {
		if p.Graph.NumNodes() == 0 {
			continue
		}
		c, err := core.NewClient(fmt.Sprintf("party-%d", idx), p.Graph, cfg, seed+int64(idx)+1)
		if err != nil {
			return nil, err
		}
		clients = append(clients, c)
		idx++
	}
	if len(clients) == 0 {
		return nil, fmt.Errorf("fedomd: no non-empty parties")
	}
	cfg2, err := opts.fedConfig()
	if err != nil {
		return nil, err
	}
	return fed.Run(cfg2, opts.wrapChaos(clients))
}

// DPConfig re-exports the Gaussian-mechanism configuration for private
// statistic uploads (see fed.DPConfig).
type DPConfig = fed.DPConfig

// TrainFedOMDPrivate is TrainFedOMD with every party's statistic uploads
// clipped and noised under (ε, δ)-differential privacy. Weight uploads are
// unchanged (secure aggregation is orthogonal to this mechanism).
func TrainFedOMDPrivate(parties []Party, cfg Config, dp DPConfig, opts RunOptions, seed int64) (*Result, error) {
	opts = opts.withDefaults()
	opts.Spec = fedOMDSpec(parties, cfg, opts)
	var clients []fed.Client
	idx := 0
	for _, p := range parties {
		if p.Graph.NumNodes() == 0 {
			continue
		}
		c, err := core.NewClient(fmt.Sprintf("party-%d", idx), p.Graph, cfg, seed+int64(idx)+1)
		if err != nil {
			return nil, err
		}
		private, err := fed.WithDP(c, dp, rand.New(rand.NewSource(seed+1000+int64(idx))))
		if err != nil {
			return nil, err
		}
		clients = append(clients, private)
		idx++
	}
	if len(clients) == 0 {
		return nil, fmt.Errorf("fedomd: no non-empty parties")
	}
	fcfg, err := opts.fedConfig()
	if err != nil {
		return nil, err
	}
	return fed.Run(fcfg, opts.wrapChaos(clients))
}

// TrainBaseline trains one of the named comparison models (see Models) over
// the parties. LocGCN trains without any federation, as in the paper.
func TrainBaseline(model string, parties []Party, opts RunOptions, seed int64) (*Result, error) {
	opts = opts.withDefaults()
	runner := experiments.NewRunner(experiments.Scale{
		Name:           "api",
		DatasetDivisor: 1,
		Rounds:         opts.Rounds,
		Patience:       opts.Patience,
		Seeds:          1,
		Hidden:         64,
		LocalEpochs:    1,
	}, seed).WithRecorder(opts.Recorder)
	co, err := codec.Parse(opts.Codec, opts.QuantBits, opts.TopK)
	if err != nil {
		return nil, err
	}
	runner.Codec = co
	return runner.RunModelPublic(model, parties, seed, opts.Sequential)
}

// ServeParty builds a FedOMD client over one party's local subgraph and
// serves it to the coordinator at addr over the gob RPC protocol, returning
// when the coordinator shuts the federation down. Raw features never leave
// the process: only weights and moment statistics cross the wire.
func ServeParty(addr, name string, party Party, cfg Config, seed int64) error {
	return ServePartyOpts(addr, name, party, cfg, seed, PartyOptions{})
}

// PartyOptions controls a served party's transport: deadlines, a Recorder
// for per-op handling telemetry, and a Tracer whose spans parent under the
// trace context the coordinator stamps into each request frame.
type PartyOptions = fed.ServeOptions

// ServePartyOpts is ServeParty with explicit transport options.
func ServePartyOpts(addr, name string, party Party, cfg Config, seed int64, opts PartyOptions) error {
	c, err := core.NewClient(name, party.Graph, cfg, seed)
	if err != nil {
		return err
	}
	return fed.ServeClientOpts(addr, c, opts)
}

// CoordinateFedOMD accepts n parties on ln and drives the federated protocol
// (FedAvg + the 2-round moment exchange) over the network. The failure
// policy, timeout, quorum, and checkpoint options all apply; Chaos does not
// (faults on a distributed run are injected at the link layer instead — see
// internal/chaos's Conn and FlakyListener).
func CoordinateFedOMD(ln net.Listener, n int, opts RunOptions) (*Result, error) {
	opts = opts.withDefaults()
	cfg, err := opts.fedConfig()
	if err != nil {
		return nil, err
	}
	return fed.RunDistributed(cfg, ln, n)
}

// Experiments drives the regeneration of every paper table and figure.
type Experiments = experiments.Runner

// NewExperiments returns an experiment runner. scale is "quick" (minutes,
// shrunken datasets), "paper" (full Table 2 sizes, hours of CPU), or
// "smoke" (seconds, for CI).
func NewExperiments(scale string, seed int64) (*Experiments, error) {
	switch scale {
	case "quick":
		return experiments.NewRunner(experiments.QuickScale(), seed), nil
	case "paper":
		return experiments.NewRunner(experiments.PaperScale(), seed), nil
	case "smoke":
		return experiments.NewRunner(experiments.SmokeScale(), seed), nil
	default:
		return nil, fmt.Errorf("fedomd: unknown scale %q (want quick, paper or smoke)", scale)
	}
}
