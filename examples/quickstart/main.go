// Quickstart: generate a Cora-like graph, cut it into three non-i.i.d
// parties with Louvain, train FedOMD federally, and print the accuracy.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"fedomd"
)

func main() {
	const seed = 42

	// 1. A synthetic stand-in for Cora at 1/8 scale (seconds instead of
	// minutes). Divisor 1 reproduces the paper's Table 2 size.
	g, err := fedomd.GenerateDataset("cora", 8, seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("dataset:", g.Summary())
	fmt.Printf("split:   %d train / %d val / %d test nodes (1%%/20%%/20%%)\n",
		len(g.TrainMask), len(g.ValMask), len(g.TestMask))

	// 2. The paper's Louvain cut: communities become parties, so label and
	// feature distributions differ across clients (Figure 4).
	parties, err := fedomd.Partition(g, 3, 1.0, seed+1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parties: %d, non-iid score %.3f\n\n",
		len(parties), fedomd.NonIIDScore(parties, g.NumClasses))

	// 3. Federated training with FedOMD's defaults: orthogonal GCN clients,
	// FedAvg, and the 2-round central-moment exchange each round.
	cfg := fedomd.DefaultConfig()
	cfg.Hidden = 32
	res, err := fedomd.TrainFedOMD(parties, cfg, fedomd.RunOptions{Rounds: 120, Patience: 40}, seed+2)
	if err != nil {
		log.Fatal(err)
	}

	for i := 0; i < len(res.History); i += 20 {
		h := res.History[i]
		fmt.Printf("round %3d: train loss %.3f, test acc %.3f\n", h.Round, h.TrainLoss, h.TestAcc)
	}
	fmt.Printf("\nFedOMD test accuracy (at best validation): %.1f%%\n", 100*res.TestAtBestVal)
	fmt.Printf("communication: %.1f MiB up / %.1f MiB down\n",
		float64(res.TotalBytesUp)/(1<<20), float64(res.TotalBytesDown)/(1<<20))
}
