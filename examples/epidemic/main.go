// Epidemic-prediction scenario from the paper's introduction: regional
// health authorities each observe a contact graph of patients whose symptom
// features are region-specific (the same disease presents differently across
// regions — the feature non-i.i.d phenomenon), and no authority may share
// raw patient data.
//
// The example builds one synthetic contact graph per region with a shared
// label semantics (diagnosis class) but region-shifted symptom features,
// federates FedOMD across the regions, and compares against training each
// region alone — showing that the CMD constraint recovers most of the
// accuracy isolation loses, without moving any patient record.
//
// Run with:
//
//	go run ./examples/epidemic
package main

import (
	"fmt"
	"log"

	"fedomd"
)

// regions in the study; each becomes one federated party.
var regions = []string{"north", "coastal", "highland", "metro"}

func main() {
	const seed = 7

	// One global "population" graph: contact communities inside regions,
	// diagnoses as node classes, symptoms as sparse features. Using the
	// generator's community machinery gives every region its own symptom
	// profile per diagnosis — exactly the paper's coronavirus example.
	g, err := fedomd.GenerateCustom(fedomd.DatasetConfig{
		Name:                "contact-graph",
		Nodes:               1200,
		Edges:               4200,
		Classes:             4, // healthy, mild, severe, critical
		Features:            120,
		CommunitiesPerClass: len(regions),
		Homophily:           0.85, // infection clusters are homophilous
		ActiveFeatures:      10,
		SignalRatio:         0.8,
	}, seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("population graph:", g.Summary())

	parties, err := fedomd.Partition(g, len(regions), 1.0, seed+1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("regional non-iid score: %.3f\n", fedomd.NonIIDScore(parties, g.NumClasses))
	for i, p := range parties {
		fmt.Printf("  region %-9s %4d patients, %5d contacts, diagnoses %v\n",
			regions[i%len(regions)], p.Graph.NumNodes(), p.Graph.NumEdges(), p.Graph.LabelHistogram())
	}

	opts := fedomd.RunOptions{Rounds: 120, Patience: 40}

	// Isolated training: every authority keeps to itself (LocGCN).
	iso, err := fedomd.TrainBaseline(fedomd.LocGCN, parties, opts, seed+2)
	if err != nil {
		log.Fatal(err)
	}

	// Plain federated GCN: shares weights but ignores the regional feature
	// shift.
	fgcn, err := fedomd.TrainBaseline(fedomd.FedGCN, parties, opts, seed+2)
	if err != nil {
		log.Fatal(err)
	}

	// FedOMD: weights + center-moment constraints align the regional hidden
	// representations into one i.i.d feature space.
	cfg := fedomd.DefaultConfig()
	cfg.Hidden = 32
	omd, err := fedomd.TrainFedOMD(parties, cfg, opts, seed+2)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\ndiagnosis accuracy across all regions:")
	fmt.Printf("  isolated per-region GCN : %5.1f%%  (no data pooling, no federation)\n", 100*iso.TestAtBestVal)
	fmt.Printf("  federated GCN (FedAvg)  : %5.1f%%  (weights shared)\n", 100*fgcn.TestAtBestVal)
	fmt.Printf("  FedOMD                  : %5.1f%%  (weights + CMD moment constraints)\n", 100*omd.TestAtBestVal)
	fmt.Printf("\nno raw patient features left any region; FedOMD exchanged only "+
		"%d-byte moment summaries per region per round.\n", summaryBytes(omd))
}

// summaryBytes estimates the per-round statistics upload of one region
// (mean + 4 central-moment vectors per hidden layer).
func summaryBytes(res *fedomd.Result) int {
	if len(res.History) == 0 {
		return 0
	}
	// Traffic beyond the weight exchange, averaged per round and region.
	weights := res.FinalParams.Bytes()
	perRound := int(res.TotalBytesUp)/len(res.History) - weights*len(regions)
	if perRound < 0 {
		return 0
	}
	return perRound / len(regions)
}
