// Money-laundering detection scenario from the paper's introduction: banks
// each hold a transaction graph over their customers, suspicious accounts
// form tight transaction communities, and regulation forbids sharing
// customer data. The banks federate to learn one detector.
//
// The example sweeps the number of participating banks (M = 3, 5, 7, as in
// Table 4's columns) and prints how FedOMD's accuracy degrades as the graph
// fragments — the paper's "more parties ⇒ harder" trend — alongside the
// FedMLP baseline that ignores transaction structure entirely.
//
// Run with:
//
//	go run ./examples/finance
package main

import (
	"fmt"
	"log"

	"fedomd"
)

func main() {
	const seed = 11

	// A synthetic interbank transaction graph: classes are account types
	// (retail, corporate, mule, shell), and laundering rings are dense
	// homophilous communities.
	g, err := fedomd.GenerateCustom(fedomd.DatasetConfig{
		Name:                "transactions",
		Nodes:               1600,
		Edges:               9000,
		Classes:             4,
		Features:            96, // transaction statistics per account
		CommunitiesPerClass: 5,
		Homophily:           0.8,
		ActiveFeatures:      12,
		SignalRatio:         0.75,
	}, seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("transaction graph:", g.Summary())
	fmt.Println()

	opts := fedomd.RunOptions{Rounds: 120, Patience: 40}
	fmt.Printf("%-8s %-12s %-12s %-12s\n", "banks", "FedOMD", "FedGCN", "FedMLP")
	for _, m := range []int{3, 5, 7} {
		parties, err := fedomd.Partition(g, m, 1.0, seed+int64(m))
		if err != nil {
			log.Fatal(err)
		}

		cfg := fedomd.DefaultConfig()
		cfg.Hidden = 32
		omd, err := fedomd.TrainFedOMD(parties, cfg, opts, seed+100)
		if err != nil {
			log.Fatal(err)
		}
		gcn, err := fedomd.TrainBaseline(fedomd.FedGCN, parties, opts, seed+100)
		if err != nil {
			log.Fatal(err)
		}
		mlp, err := fedomd.TrainBaseline(fedomd.FedMLP, parties, opts, seed+100)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("M=%-6d %-12s %-12s %-12s\n", m,
			pct(omd.TestAtBestVal), pct(gcn.TestAtBestVal), pct(mlp.TestAtBestVal))
	}
	fmt.Println("\nstructure matters: graph models dominate FedMLP, and FedOMD's")
	fmt.Println("moment constraints counteract the fragmentation of laundering rings")
	fmt.Println("across banks as M grows.")
}

func pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }
