// Custom-configuration example: everything the public API exposes beyond the
// happy path — a hand-built dataset configuration, ablation switches on the
// FedOMD objective (the Table 6 experiment in miniature), a deeper orthogonal
// stack (Table 7 in miniature), and a resolution sweep of the Louvain cut
// (Figure 7 in miniature).
//
// Run with:
//
//	go run ./examples/custom
package main

import (
	"fmt"
	"log"

	"fedomd"
)

func main() {
	const seed = 23

	g, err := fedomd.GenerateDataset("citeseer", 12, seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("dataset:", g.Summary())
	opts := fedomd.RunOptions{Rounds: 100, Patience: 35}

	// --- Table 6 in miniature: ablating the two FedOMD components. ---
	parties, err := fedomd.Partition(g, 3, 1.0, seed+1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nablation (M=3):")
	for _, v := range []struct {
		label            string
		useOrtho, useCMD bool
	}{
		{"ortho only ", true, false},
		{"CMD only   ", false, true},
		{"ortho + CMD", true, true},
	} {
		cfg := fedomd.DefaultConfig()
		cfg.Hidden = 32
		cfg.UseOrtho = v.useOrtho
		cfg.UseCMD = v.useCMD
		res, err := fedomd.TrainFedOMD(parties, cfg, opts, seed+2)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s: %5.1f%%\n", v.label, 100*res.TestAtBestVal)
	}

	// --- Table 7 in miniature: deeper orthogonal stacks. ---
	fmt.Println("\ndepth (M=3):")
	for _, depth := range []int{2, 4, 6} {
		cfg := fedomd.DefaultConfig()
		cfg.Hidden = 32
		cfg.HiddenLayers = depth
		res, err := fedomd.TrainFedOMD(parties, cfg, opts, seed+2)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %d-hidden: %5.1f%%\n", depth, 100*res.TestAtBestVal)
	}

	// --- Figure 7 in miniature: the Louvain resolution knob. ---
	fmt.Println("\nLouvain resolution (M=3):")
	for _, res := range []float64{0.5, 5, 50} {
		ps, err := fedomd.Partition(g, 3, res, seed+3)
		if err != nil {
			log.Fatal(err)
		}
		cfg := fedomd.DefaultConfig()
		cfg.Hidden = 32
		r, err := fedomd.TrainFedOMD(ps, cfg, opts, seed+4)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  resolution %4.1f: non-iid %.3f, accuracy %5.1f%%\n",
			res, fedomd.NonIIDScore(ps, g.NumClasses), 100*r.TestAtBestVal)
	}
}
