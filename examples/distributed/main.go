// Distributed deployment: the same FedOMD federation as the quickstart, but
// with every party in its own goroutine speaking the length-delimited gob
// protocol over loopback TCP — the topology a real cross-institution
// deployment would use (one process per hospital/bank), demonstrated in a
// single binary.
//
// Run with:
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"log"
	"net"
	"sync"

	"fedomd"
)

func main() {
	const seed = 31

	g, err := fedomd.GenerateDataset("citeseer", 8, seed)
	if err != nil {
		log.Fatal(err)
	}
	parties, err := fedomd.Partition(g, 3, 1.0, seed+1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset %s, %d parties, non-iid %.3f\n",
		g.Summary(), len(parties), fedomd.NonIIDScore(parties, g.NumClasses))

	// The coordinator listens; it never sees any party's node features.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()
	fmt.Println("coordinator listening on", ln.Addr())

	cfg := fedomd.DefaultConfig()
	cfg.Hidden = 32

	// Each party dials in and serves its local FedOMD client.
	var wg sync.WaitGroup
	for i := range parties {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := fedomd.ServeParty(ln.Addr().String(), fmt.Sprintf("institution-%d", i),
				parties[i], cfg, seed+int64(i)+2); err != nil {
				log.Printf("institution-%d: %v", i, err)
			}
		}(i)
	}

	res, err := fedomd.CoordinateFedOMD(ln, len(parties), fedomd.RunOptions{Rounds: 120, Patience: 40})
	if err != nil {
		log.Fatal(err)
	}
	wg.Wait()

	fmt.Printf("\ndistributed FedOMD test accuracy: %.1f%%\n", 100*res.TestAtBestVal)
	fmt.Printf("wire traffic: %.1f MiB up / %.1f MiB down over %d rounds\n",
		float64(res.TotalBytesUp)/(1<<20), float64(res.TotalBytesDown)/(1<<20), len(res.History))
}
