module fedomd

go 1.22
